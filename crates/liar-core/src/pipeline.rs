//! The LIAR driver: the fig. 2 workflow from input expression to per-step
//! solutions.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use liar_egraph::{
    BackoffScheduler, DagExtractor, ExtractionStats, Extractor, Runner, RunnerLimits,
    SnapshotError, StopReason,
};
use liar_ir::{ArrayAnalysis, ArrayEGraph, ArrayExplanation, Expr};
use liar_trace::{FlightKind, FlightRecorder, Recorder, TraceSink};

use crate::cache::SaturationCache;
use crate::cost::TargetCost;
use crate::fingerprint::{request_fingerprint, BudgetKnobs, Fingerprint};
use crate::inspect::InspectReport;
use crate::profile::MachineProfile;
use crate::rules::{rules_for, rules_for_targets, RuleConfig, Target};
use crate::store::SnapshotStore;

/// A multi-target optimization request failed: one of the requested
/// `(target, discount_scale, profile)` extractions found no finite-cost
/// term for the root.
///
/// This is the pipeline-level face of [`liar_egraph::ExtractError`]: it
/// happens when the *request* is unsatisfiable — e.g. the input expression
/// is a library call of a foreign target, so the requested target's cost
/// model prices every equivalent term at infinity. The serve daemon maps
/// this to a structured protocol error instead of panicking a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeError {
    /// The target whose extraction failed.
    pub target: Target,
    /// The discount scale it ran at.
    pub discount_scale: f64,
    /// The machine profile it ran under.
    pub profile: String,
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no extractable solution for target {} (discount scale {}, profile {}): \
             every equivalent term costs infinity under this model",
            self.target, self.discount_scale, self.profile
        )
    }
}

impl std::error::Error for OptimizeError {}

/// A warm-started request ([`Liar::optimize_multi_warm`]) failed: either
/// the seed snapshot would not restore, or the optimization itself did.
#[derive(Debug, Clone, PartialEq)]
pub enum WarmError {
    /// The seed snapshot's bytes did not restore to an e-graph.
    Snapshot(SnapshotError),
    /// The resumed optimization failed (see [`OptimizeError`]).
    Optimize(OptimizeError),
}

impl std::fmt::Display for WarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmError::Snapshot(e) => write!(f, "warm-start snapshot failed to restore: {e}"),
            WarmError::Optimize(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for WarmError {}

impl From<SnapshotError> for WarmError {
    fn from(e: SnapshotError) -> Self {
        WarmError::Snapshot(e)
    }
}

impl From<OptimizeError> for WarmError {
    fn from(e: OptimizeError) -> Self {
        WarmError::Optimize(e)
    }
}

/// The state of the search after one saturation step: e-graph statistics
/// plus the best expression the target's cost model extracts — the raw
/// data behind tables II–III and figures 4–6 of the paper.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Saturation step (0 = before any rewriting).
    pub step: usize,
    /// Unique e-nodes after the step.
    pub n_nodes: usize,
    /// E-classes after the step.
    pub n_classes: usize,
    /// Wall-clock time of the step (zero for step 0).
    pub step_time: Duration,
    /// Time the step spent in the (possibly parallel) search phase (zero
    /// for step 0).
    pub search_time: Duration,
    /// Candidate e-classes the search phase scheduled across all unbanned
    /// rules (zero for step 0) — the quantity the operator index shrinks;
    /// see [`liar_egraph::Iteration::search_candidates`].
    pub search_candidates: usize,
    /// E-classes the search phase actually *scanned* with the e-matching
    /// VM (zero for step 0) — the quantity semi-naive search shrinks; see
    /// [`liar_egraph::Iteration::frontier_candidates`]. Equal to
    /// [`search_candidates`](StepReport::search_candidates) with
    /// [`Liar::with_seminaive`]`(false)`.
    pub frontier_candidates: usize,
    /// Substitutions the search phase produced (zero for step 0).
    pub search_matches: usize,
    /// `(rule name, applications that changed the e-graph)` during this
    /// step, in rule-set order (empty for step 0) — cheap provenance
    /// statistics even with explanations off; `liar optimize --verbose`
    /// prints the top rules.
    pub applied: Vec<(String, usize)>,
    /// Best expression under the target cost model.
    pub best: Expr,
    /// Its cost.
    pub cost: f64,
    /// Library calls in `best`: family name → count (e.g. `gemv → 2`).
    pub lib_calls: BTreeMap<String, usize>,
}

impl StepReport {
    /// Format the library calls like the paper's tables: `2 × gemv + 1 ×
    /// memset`, or `—` when the solution calls no library.
    pub fn solution_summary(&self) -> String {
        if self.lib_calls.is_empty() {
            return "—".to_string();
        }
        self.lib_calls
            .iter()
            .map(|(name, count)| format!("{count} × {name}"))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// The result of optimizing one kernel for one target.
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// The target whose rules and cost model were used.
    pub target: Target,
    /// Step 0 (initial) through the last step run.
    pub steps: Vec<StepReport>,
    /// Why saturation stopped.
    pub stop_reason: StopReason,
}

impl OptimizationReport {
    /// The report of the final step (the paper's tables report this row).
    pub fn best(&self) -> &StepReport {
        self.steps.last().expect("at least step 0 exists")
    }

    /// Total time spent in the search (e-matching) phase across all steps
    /// — the quantity [`Liar::with_threads`] accelerates.
    pub fn total_search_time(&self) -> Duration {
        self.steps.iter().map(|s| s.search_time).sum()
    }

    /// Total candidate e-classes the search phase scheduled across all
    /// steps — the work the operator index avoids (compare a run whose
    /// rules use the oracle matcher to see the reduction).
    pub fn total_search_candidates(&self) -> usize {
        self.steps.iter().map(|s| s.search_candidates).sum()
    }

    /// Total e-classes the search phase actually scanned across all steps
    /// — the work semi-naive search avoids (equal to
    /// [`total_search_candidates`](OptimizationReport::total_search_candidates)
    /// with [`Liar::with_seminaive`]`(false)`).
    pub fn total_frontier_candidates(&self) -> usize {
        self.steps.iter().map(|s| s.frontier_candidates).sum()
    }

    /// Total substitutions found across all steps' search phases.
    pub fn total_search_matches(&self) -> usize {
        self.steps.iter().map(|s| s.search_matches).sum()
    }

    /// The first step at which the final solution was found (steps whose
    /// best expression equals the final one, counted from the end).
    pub fn convergence_step(&self) -> usize {
        let last = &self.best().best;
        self.steps
            .iter()
            .find(|s| &s.best == last)
            .map(|s| s.step)
            .unwrap_or(0)
    }
}

/// Per-step e-graph statistics of a multi-target saturation (the
/// [`StepReport`] fields that do not depend on a target's cost model —
/// multi-target runs extract only once, at the end).
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationStep {
    /// Saturation step (0 = before any rewriting).
    pub step: usize,
    /// Unique e-nodes after the step.
    pub n_nodes: usize,
    /// E-classes after the step.
    pub n_classes: usize,
    /// Wall-clock time of the step (zero for step 0).
    pub step_time: Duration,
    /// Time the step spent in the (possibly parallel) search phase.
    pub search_time: Duration,
    /// Candidate e-classes the search phase scheduled across all rules.
    pub search_candidates: usize,
    /// E-classes the search phase actually scanned (semi-naive search
    /// scans only the delta frontier; see
    /// [`liar_egraph::Iteration::frontier_candidates`]).
    pub frontier_candidates: usize,
    /// Substitutions the search phase produced.
    pub search_matches: usize,
}

/// One extracted solution of a multi-target run: a `(target,
/// discount_scale)` pair's best expression plus its extraction statistics.
///
/// `best`/`cost` use the tree extractor; for the library targets they
/// are bit-identical to what a single-target [`Liar::optimize`] run with
/// the same settings reports (pure C is only guaranteed to match at
/// convergence — see [`Liar::optimize_multi`]'s fidelity caveat).
/// `dag_cost`/`dag_best` come from the DAG extractor
/// ([`liar_egraph::DagExtractor`]), which charges each selected e-class
/// once, so `dag_cost <= cost` always.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSolution {
    /// The target whose cost model extracted this solution.
    pub target: Target,
    /// The discount scale the cost model ran at (1.0 = the paper's).
    pub discount_scale: f64,
    /// The machine profile the cost model ran under
    /// ([`MachineProfile::name`]; `"default"` = the identity profile).
    pub profile: String,
    /// Best expression under the target's *tree* cost model.
    pub best: Expr,
    /// Its tree cost.
    pub cost: f64,
    /// Best expression under the target's *DAG* cost model (its flat node
    /// table shares each selected class once).
    pub dag_best: Expr,
    /// Its DAG cost (each selected class charged once; `<= cost`).
    pub dag_cost: f64,
    /// Library calls in `best`: family name → count.
    pub lib_calls: BTreeMap<String, usize>,
    /// Wall-clock time of this extraction (tree + DAG fixpoints).
    pub extract_time: Duration,
    /// DAG-extraction fixpoint statistics.
    pub stats: ExtractionStats,
    /// A replayable proof that the source expression equals
    /// [`best`](MultiSolution::best), populated when the pipeline ran
    /// with [`Liar::with_explanations`]. Validate it with
    /// [`liar_egraph::Explanation::check`] against the rule set the run
    /// used ([`crate::rules::rules_for_targets`]).
    pub proof: Option<ArrayExplanation>,
}

impl MultiSolution {
    /// Format the library calls like the paper's tables (see
    /// [`StepReport::solution_summary`]).
    pub fn solution_summary(&self) -> String {
        if self.lib_calls.is_empty() {
            return "—".to_string();
        }
        self.lib_calls
            .iter()
            .map(|(name, count)| format!("{count} × {name}"))
            .collect::<Vec<_>>()
            .join(" + ")
    }

    /// How much cheaper the DAG accounting is than the tree accounting,
    /// as a fraction of the tree cost (0.0 = no sharing in the solution).
    pub fn sharing_discount(&self) -> f64 {
        if self.cost == 0.0 {
            return 0.0;
        }
        1.0 - self.dag_cost / self.cost
    }
}

/// The result of a "saturate once, extract everywhere" run
/// ([`Liar::optimize_multi`]): one saturation with the union ruleset, one
/// [`MultiSolution`] per `(target, discount_scale)` pair.
///
/// `PartialEq` compares every field, timings included — the saturation
/// cache's "bit-identical replay" contract is tested with plain `==`.
/// The one exception is [`inspect`](MultiReport::inspect): the
/// attribution ledger is observational (like tracing), so two reports
/// that differ only in whether introspection ran still compare equal.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// The targets extracted, in the order requested.
    pub targets: Vec<Target>,
    /// The discount scales extracted, in the order requested.
    pub discount_scales: Vec<f64>,
    /// The machine profiles extracted under, in the order requested.
    pub profiles: Vec<String>,
    /// Why the (shared) saturation stopped.
    pub stop_reason: StopReason,
    /// Per-step e-graph statistics of the shared saturation.
    pub steps: Vec<SaturationStep>,
    /// Total wall-clock time of the shared saturation.
    pub saturation_time: Duration,
    /// E-nodes in the final e-graph.
    pub n_nodes: usize,
    /// E-classes in the final e-graph.
    pub n_classes: usize,
    /// One solution per `(target, discount_scale)`, targets outermost.
    pub solutions: Vec<MultiSolution>,
    /// The growth-attribution tables, when this report's saturation ran
    /// with [`Liar::with_attribution`] enabled. `None` on warm restores
    /// (the ledger needs the whole history; a snapshot carries none) and
    /// whenever attribution was off. Excluded from `PartialEq`.
    pub inspect: Option<InspectReport>,
}

impl PartialEq for MultiReport {
    fn eq(&self, other: &Self) -> bool {
        // Everything except `inspect` — see the struct docs.
        self.targets == other.targets
            && self.discount_scales == other.discount_scales
            && self.profiles == other.profiles
            && self.stop_reason == other.stop_reason
            && self.steps == other.steps
            && self.saturation_time == other.saturation_time
            && self.n_nodes == other.n_nodes
            && self.n_classes == other.n_classes
            && self.solutions == other.solutions
    }
}

impl MultiReport {
    /// The solution extracted for `target` at the first requested
    /// discount scale.
    pub fn solution(&self, target: Target) -> Option<&MultiSolution> {
        self.solutions.iter().find(|s| s.target == target)
    }

    /// The solution extracted for `target` at `discount_scale` (at the
    /// first requested profile).
    pub fn solution_at(&self, target: Target, discount_scale: f64) -> Option<&MultiSolution> {
        self.solutions
            .iter()
            .find(|s| s.target == target && s.discount_scale == discount_scale)
    }

    /// The solution extracted for `target` at `discount_scale` under
    /// `profile`.
    pub fn solution_for(
        &self,
        target: Target,
        discount_scale: f64,
        profile: &str,
    ) -> Option<&MultiSolution> {
        self.solutions.iter().find(|s| {
            s.target == target && s.discount_scale == discount_scale && s.profile == profile
        })
    }

    /// Total wall-clock time spent extracting, across all solutions.
    pub fn total_extract_time(&self) -> Duration {
        self.solutions.iter().map(|s| s.extract_time).sum()
    }

    /// Total time spent in the search phase of the shared saturation.
    pub fn total_search_time(&self) -> Duration {
        self.steps.iter().map(|s| s.search_time).sum()
    }
}

/// The pipeline-wide semi-naive default: on, unless the environment
/// variable `LIAR_SEMINAIVE` is set to `0` (the escape hatch the
/// differential CI suites use to run every engine both ways).
fn seminaive_default() -> bool {
    std::env::var("LIAR_SEMINAIVE").map_or(true, |v| v != "0")
}

/// Count library calls in an expression by family name.
pub fn count_lib_calls(expr: &Expr) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for node in expr.nodes() {
        if let Some(f) = node.as_call() {
            *counts.entry(f.family_name().to_string()).or_insert(0) += 1;
        }
    }
    counts
}

/// The LIAR pipeline for one target (paper fig. 2): rules = language
/// semantics + scalar + target idioms; extractor = the target cost model,
/// run after every saturation step.
#[derive(Debug, Clone)]
pub struct Liar {
    target: Target,
    config: RuleConfig,
    limits: RunnerLimits,
    match_limit: usize,
    discount_scale: f64,
    profiles: Vec<MachineProfile>,
    threads: usize,
    seminaive: bool,
    explain: bool,
    cache: Option<Arc<SaturationCache>>,
    store: Option<Arc<SnapshotStore>>,
    trace: Option<Arc<Recorder>>,
    attribution: bool,
    flight: Option<Arc<FlightRecorder>>,
}

/// How [`Liar::optimize_multi_status`] obtained its report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Replayed from the attached saturation cache.
    Hit,
    /// Computed now and stored in the attached cache (or refused by its
    /// byte budget — see [`crate::cache::CacheStats::rejected`]).
    Miss,
    /// Computed now; no cache is attached.
    Uncached,
    /// Restored from the attached durable snapshot store
    /// ([`Liar::with_snapshot_store`]): the prior saturation's e-graph was
    /// deserialized from disk and only extraction ran — the report's
    /// [`steps`](MultiReport::steps) are empty (zero saturation steps).
    /// The report is also promoted into the in-memory cache, so later
    /// repeats are [`Hit`](CacheStatus::Hit)s.
    Warm,
}

impl CacheStatus {
    /// Wire name (the serve protocol's `cache` field).
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Uncached => "uncached",
            CacheStatus::Warm => "warm",
        }
    }
}

impl std::fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl Liar {
    /// A pipeline for `target` with defaults suitable for the evaluation
    /// kernels (step-limited, as the artifact recommends).
    pub fn new(target: Target) -> Self {
        Liar {
            target,
            config: RuleConfig::default(),
            limits: RunnerLimits {
                iter_limit: 10,
                node_limit: 300_000,
                time_limit: None,
            },
            match_limit: 40_000,
            discount_scale: 1.0,
            profiles: vec![MachineProfile::default()],
            threads: 1,
            seminaive: seminaive_default(),
            explain: false,
            cache: None,
            store: None,
            trace: None,
            attribution: false,
            flight: None,
        }
    }

    /// Enable proof production: the saturation e-graph records an
    /// explanation forest, and every extracted solution carries a
    /// replayable [`ArrayExplanation`] ([`MultiSolution::proof`];
    /// [`Liar::optimize_explained`] for the single-target pipeline).
    ///
    /// Off by default — the fast path pays nothing. With explanations on,
    /// saturation does extra provenance bookkeeping (see
    /// `docs/EXPLANATIONS.md` for measured overhead); solutions and costs
    /// are found from the same rule set, but the run is not guaranteed to
    /// be bit-identical to an explanations-off run.
    pub fn with_explanations(mut self, on: bool) -> Self {
        self.explain = on;
        self
    }

    /// Set the saturation-step limit.
    pub fn with_iter_limit(mut self, limit: usize) -> Self {
        self.limits.iter_limit = limit;
        self
    }

    /// Set the e-node budget.
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.limits.node_limit = limit;
        self
    }

    /// Set a wall-clock budget (the paper uses five minutes per kernel).
    pub fn with_time_limit(mut self, limit: Duration) -> Self {
        self.limits.time_limit = Some(limit);
        self
    }

    /// Use a custom rule configuration.
    pub fn with_rule_config(mut self, config: RuleConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the per-rule, per-step match budget of the backoff scheduler.
    pub fn with_match_limit(mut self, limit: usize) -> Self {
        self.match_limit = limit;
        self
    }

    /// Scale the cost model's library-call discount factors (ablation;
    /// see [`TargetCost::with_discount_scale`]).
    pub fn with_discount_scale(mut self, scale: f64) -> Self {
        self.discount_scale = scale;
        self
    }

    /// Extract under these machine profiles, in order (the default is
    /// `[MachineProfile::default()]` — the identity). Profiles only affect
    /// extraction, never saturation, so a multi-profile request still
    /// saturates once; they are part of the request fingerprint.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty — a request must extract under at
    /// least one profile.
    pub fn with_profiles(mut self, profiles: Vec<MachineProfile>) -> Self {
        assert!(!profiles.is_empty(), "at least one machine profile required");
        self.profiles = profiles;
        self
    }

    /// The machine profiles this pipeline extracts under.
    pub fn profiles(&self) -> &[MachineProfile] {
        &self.profiles
    }

    /// Search with `n` worker threads (`0` and `1` both mean serial).
    ///
    /// Parallelizes the e-matching phase of every saturation step; the
    /// resulting [`OptimizationReport`] is bit-identical to a serial run
    /// (see [`liar_egraph::Runner::with_threads`]).
    pub fn with_threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Enable or disable semi-naive (delta-frontier) e-matching.
    ///
    /// On by default (set the environment variable `LIAR_SEMINAIVE=0` to
    /// flip the default off — the differential CI suites run both ways).
    /// Like the thread count, this knob is **excluded** from
    /// [`Liar::request_fingerprint`]: the resulting
    /// [`OptimizationReport`]/[`MultiReport`] is bit-identical either way
    /// (only [`StepReport::frontier_candidates`] and wall-clock timings
    /// reflect the saved work), so cached reports are interchangeable.
    /// See [`liar_egraph::Runner::with_seminaive`].
    pub fn with_seminaive(mut self, on: bool) -> Self {
        self.seminaive = on;
        self
    }

    /// Attach a shared saturation cache: [`Liar::optimize_multi`] will
    /// replay cached reports and store fresh ones. Clones of this
    /// pipeline share the same cache (it is behind an [`Arc`]).
    pub fn with_cache(mut self, cache: Arc<SaturationCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attach a durable snapshot store ([`SnapshotStore`]):
    /// [`Liar::optimize_multi_status`] will restore saturated e-graphs
    /// from disk ([`CacheStatus::Warm`] — extraction only, zero saturation
    /// steps) and persist every fresh saturation's snapshot, keyed by
    /// [`Liar::request_fingerprint`]. Unlike the in-memory cache, the
    /// store survives the process: a restarted serve node answers
    /// previously-seen requests without re-saturating.
    ///
    /// A snapshot that fails to restore (truncated, bit-flipped, wrong
    /// version) is treated as a miss and the request runs cold — the
    /// fresh snapshot then overwrites the bad file, so the store is
    /// self-healing and never produces a wrong answer.
    pub fn with_snapshot_store(mut self, store: Arc<SnapshotStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// The attached durable snapshot store, if any.
    pub fn snapshot_store(&self) -> Option<&Arc<SnapshotStore>> {
        self.store.as_ref()
    }

    /// Attach a trace recorder ([`liar_trace::Recorder`]): every pipeline
    /// mode emits hierarchical spans (`saturate`, `extract/<target>`,
    /// `snapshot/save`, `explain/<target>`, …) plus the per-step
    /// saturation spans the underlying [`Runner`] records (see
    /// [`liar_egraph::Runner::with_trace`] for the span taxonomy;
    /// `docs/OBSERVABILITY.md` for the full catalogue).
    ///
    /// Tracing is strictly observational: reports, solutions and proofs
    /// are bit-identical with it on or off, so — like the thread count and
    /// the semi-naive knob — the recorder is **excluded** from
    /// [`Liar::request_fingerprint`] and traced/untraced cache entries are
    /// interchangeable. Events from a *disabled* recorder
    /// ([`Recorder::off`]) cost one relaxed atomic load and a branch per
    /// call site.
    pub fn with_trace(mut self, recorder: Arc<Recorder>) -> Self {
        self.trace = Some(recorder);
        self
    }

    /// The attached trace recorder, if any.
    pub fn trace_recorder(&self) -> Option<&Arc<Recorder>> {
        self.trace.as_ref()
    }

    /// Enable growth attribution: the saturation e-graph keeps an
    /// [`Attribution`](liar_egraph::Attribution) ledger charging every
    /// e-node and e-class creation and every merge to its originating
    /// rule (or a builtin origin: `(init)`, `(congruence)`, `(direct)`),
    /// and multi-target reports carry the folded
    /// [`InspectReport`] tables ([`MultiReport::inspect`]).
    ///
    /// Off by default — the fast path pays nothing. Attribution is
    /// strictly observational: reports, solutions and proofs are
    /// bit-identical with it on or off, so — like tracing — the knob is
    /// **excluded** from [`Liar::request_fingerprint`] and attributed /
    /// unattributed cache entries are interchangeable.
    pub fn with_attribution(mut self, on: bool) -> Self {
        self.attribution = on;
        self
    }

    /// Whether growth attribution is enabled.
    pub fn attribution_enabled(&self) -> bool {
        self.attribution
    }

    /// Attach a flight recorder ([`liar_trace::FlightRecorder`]): the
    /// pipeline and its runners record notable events into the bounded
    /// ring — rules firing and being banned, budget truncations, cache
    /// hits and misses, snapshot restores. Like the trace recorder, the
    /// flight recorder is observational and **excluded** from
    /// [`Liar::request_fingerprint`].
    pub fn with_flight(mut self, flight: Arc<FlightRecorder>) -> Self {
        self.flight = Some(flight);
        self
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// A sink on the attached recorder's `lane` — inert when no recorder
    /// is attached.
    fn sink(&self, lane: &str) -> TraceSink {
        match &self.trace {
            Some(rec) => TraceSink::attached(rec, lane),
            None => TraceSink::off(),
        }
    }

    /// The target this pipeline optimizes for.
    pub fn target(&self) -> Target {
        self.target
    }

    /// The budget knobs that participate in request fingerprints.
    pub fn budget_knobs(&self) -> BudgetKnobs {
        BudgetKnobs {
            iter_limit: self.limits.iter_limit,
            node_limit: self.limits.node_limit,
            time_limit: self.limits.time_limit,
            match_limit: self.match_limit,
            explain: self.explain,
        }
    }

    /// The content address of the [`Liar::optimize_multi`] request
    /// `(expr, targets, discount_scales)` would make under this
    /// pipeline's configuration — see [`crate::fingerprint`] for what the
    /// key covers (notably: the thread count is excluded, because
    /// parallel search is bit-identical to serial).
    pub fn request_fingerprint(
        &self,
        expr: &Expr,
        targets: &[Target],
        discount_scales: &[f64],
    ) -> Fingerprint {
        request_fingerprint(
            expr,
            &self.config,
            targets,
            discount_scales,
            &self.profiles,
            &self.budget_knobs(),
        )
    }

    /// The saturation runner every pipeline mode shares: same scheduler,
    /// limits and thread count whether one target's rules or a union
    /// ruleset will be run over it.
    fn runner_for(&self, expr: &Expr) -> (Runner<liar_ir::ArrayLang, liar_ir::ArrayAnalysis>, liar_egraph::Id) {
        let mut egraph = if self.explain {
            ArrayEGraph::default().with_explanations_enabled()
        } else {
            ArrayEGraph::default()
        };
        if self.attribution {
            egraph = egraph.with_attribution_enabled();
        }
        let root = egraph.add_expr(expr);
        let runner = self.wrap_runner(egraph, root);
        (runner, root)
    }

    /// The scheduler every pipeline mode uses.
    fn scheduler(&self) -> BackoffScheduler {
        BackoffScheduler::new(self.match_limit, 2)
            // The intro rules pair classes quadratically; give them a
            // tighter budget so they cannot starve the idiom rules.
            .with_rule_limit("intro-lambda", self.match_limit / 4)
            .with_rule_limit("intro-index-build", self.match_limit / 4)
            .with_rule_limit("intro-fst-tuple", self.match_limit / 8)
            .with_rule_limit("intro-snd-tuple", self.match_limit / 8)
    }

    /// Wrap an e-graph and its root in a runner with this pipeline's
    /// limits, scheduler, thread count and engine knobs.
    fn wrap_runner(
        &self,
        egraph: ArrayEGraph,
        root: liar_egraph::Id,
    ) -> Runner<liar_ir::ArrayLang, liar_ir::ArrayAnalysis> {
        let runner = Runner::new(egraph)
            .with_root(root)
            .with_limits(self.limits.clone())
            .with_scheduler(self.scheduler())
            .with_threads(self.threads)
            .with_seminaive(self.seminaive);
        let runner = match &self.flight {
            Some(flight) => runner.with_flight(Arc::clone(flight)),
            None => runner,
        };
        match &self.trace {
            Some(rec) => runner.with_trace(rec),
            None => runner,
        }
    }

    /// Restore a snapshotted prior saturation, add `expr` as a new root,
    /// and wrap the result in a runner whose semi-naive frontier is
    /// pre-sealed at the snapshot's delta version — the warm-start
    /// entry point shared by [`Liar::saturate_warm`] and
    /// [`Liar::optimize_multi_warm`]. Only classes added *after* the
    /// restore (the new root's sub-terms and anything rewriting derives
    /// from them) hit the search frontier; the snapshot's classes are
    /// treated as already-searched.
    fn warm_runner_for(
        &self,
        snapshot: &[u8],
        expr: &Expr,
    ) -> Result<(Runner<liar_ir::ArrayLang, liar_ir::ArrayAnalysis>, liar_egraph::Id), SnapshotError>
    {
        let mut egraph = ArrayEGraph::restore(ArrayAnalysis::default(), snapshot)?;
        let sealed = egraph.delta_version();
        let root = egraph.add_expr(expr);
        let runner = self.wrap_runner(egraph, root).with_warm_frontier(sealed);
        Ok((runner, root))
    }

    /// Run the full workflow on `expr`, extracting the best expression
    /// after every saturation step.
    pub fn optimize(&self, expr: &Expr) -> OptimizationReport {
        self.optimize_with_runner(expr).0
    }

    /// Run the full workflow **with proof production**: the pipeline's
    /// explanation knob is forced on for this run, and alongside the
    /// report you get a replayable [`ArrayExplanation`] that the source
    /// expression equals the final best expression. Check it with
    /// [`liar_egraph::Explanation::check`] against
    /// [`crate::rules::rules_for`]`(target, config)`.
    pub fn optimize_explained(&self, expr: &Expr) -> (OptimizationReport, ArrayExplanation) {
        let explained = self.clone().with_explanations(true);
        let (report, mut runner) = explained.optimize_with_runner(expr);
        let proof = runner
            .egraph
            .explain_equivalence(expr, &report.best().best);
        (report, proof)
    }

    /// Run the full workflow and also return the saturated e-graph
    /// (`liar dot` renders it; with [`Liar::with_explanations`] the
    /// e-graph can still answer
    /// [`explain_equivalence`](liar_egraph::EGraph::explain_equivalence)
    /// queries about the run).
    pub fn optimize_with_egraph(&self, expr: &Expr) -> (OptimizationReport, ArrayEGraph) {
        let (report, runner) = self.optimize_with_runner(expr);
        (report, runner.egraph)
    }

    /// [`Liar::optimize`], also returning the saturated runner (the
    /// explained pipeline needs the e-graph afterwards).
    fn optimize_with_runner(
        &self,
        expr: &Expr,
    ) -> (
        OptimizationReport,
        Runner<liar_ir::ArrayLang, liar_ir::ArrayAnalysis>,
    ) {
        let rules = rules_for(self.target, &self.config);
        let cost = TargetCost::new(self.target).with_discount_scale(self.discount_scale);

        let (mut runner, root) = self.runner_for(expr);

        /// Search-phase statistics forwarded from an
        /// [`liar_egraph::Iteration`] into a [`StepReport`].
        struct SearchStats {
            time: Duration,
            candidates: usize,
            frontier: usize,
            matches: usize,
        }

        let mut steps = Vec::new();
        let extract = |egraph: &ArrayEGraph,
                       step: usize,
                       time: Duration,
                       search: SearchStats,
                       applied: Vec<(String, usize)>|
         -> StepReport {
            let extractor = Extractor::new(egraph, cost);
            let (cost, best) = extractor.find_best(root);
            let lib_calls = count_lib_calls(&best);
            StepReport {
                step,
                n_nodes: egraph.num_nodes(),
                n_classes: egraph.num_classes(),
                step_time: time,
                search_time: search.time,
                search_candidates: search.candidates,
                frontier_candidates: search.frontier,
                search_matches: search.matches,
                applied,
                cost,
                lib_calls,
                best,
            }
        };

        let zero = SearchStats {
            time: Duration::ZERO,
            candidates: 0,
            frontier: 0,
            matches: 0,
        };
        let mut sink = self.sink("pipeline");
        let span = sink.begin("extract/step");
        steps.push(extract(&runner.egraph, 0, Duration::ZERO, zero, Vec::new()));
        sink.end_with(span, &[("step", 0.0)]);
        let stop_reason = loop {
            match runner.run_one(&rules) {
                Ok(iter) => {
                    let (index, time) = (iter.index, iter.total_time);
                    let search = SearchStats {
                        time: iter.search_time,
                        candidates: iter.search_candidates,
                        frontier: iter.frontier_candidates,
                        matches: iter.search_matches,
                    };
                    let applied = iter.applied.clone();
                    let span = sink.begin("extract/step");
                    steps.push(extract(&runner.egraph, index, time, search, applied));
                    sink.end_with(span, &[("step", index as f64)]);
                    if runner.stop_reason.is_some() {
                        break runner.stop_reason.clone().unwrap();
                    }
                }
                Err(reason) => break reason,
            }
        };

        (
            OptimizationReport {
                target: self.target,
                steps,
                stop_reason,
            },
            runner,
        )
    }

    /// Saturate **once** with the union of `targets`' rule sets, then
    /// extract one solution per `(target, discount_scale)` pair from the
    /// same e-graph — the paper's "one cost model walks the saturated
    /// e-graph" (§II(c)), amortized across every cost model of interest.
    ///
    /// The e-graph a saturation produces is target-independent (rules only
    /// ever *add* equivalences; a target's calls cost infinity under
    /// another target's model and are never selected), so per-target
    /// solutions extracted here match what the per-target pipelines find,
    /// at a fraction of the total time: see
    /// `tests/extract_differential.rs` and the `extract` bench.
    ///
    /// One caveat: the standalone pure-C pipeline saturates a *smaller*
    /// ruleset (core + scalar only), so on a kernel whose loop-form
    /// search is still iteration-truncated it can reach a normal form the
    /// union run has not derived yet. Library-call solutions converge
    /// robustly; pure-C parity is guaranteed once saturation converges
    /// (see docs/EXTRACTION.md, "Fidelity").
    ///
    /// Each solution carries both tree and DAG costs ([`MultiSolution`]).
    ///
    /// # Errors
    ///
    /// [`OptimizeError`] when some requested `(target, discount_scale,
    /// profile)` has no finite-cost term for the root — e.g. the input is
    /// a library call of a foreign target. Errors are never cached.
    ///
    /// # Example
    ///
    /// ```
    /// use liar_core::{Liar, Target};
    /// use liar_ir::dsl;
    ///
    /// let vsum = dsl::vsum(64, dsl::sym("xs"));
    /// let report = Liar::new(Target::Blas)
    ///     .with_iter_limit(6)
    ///     .optimize_multi(&vsum, &Target::ALL, &[1.0])
    ///     .expect("every target can extract a vsum");
    /// // One saturation, three library mappings:
    /// let blas = report.solution(Target::Blas).unwrap();
    /// let torch = report.solution(Target::Torch).unwrap();
    /// assert_eq!(blas.solution_summary(), "1 × dot");
    /// assert_eq!(torch.solution_summary(), "1 × sum");
    /// assert!(blas.dag_cost <= blas.cost);
    /// ```
    pub fn optimize_multi(
        &self,
        expr: &Expr,
        targets: &[Target],
        discount_scales: &[f64],
    ) -> Result<MultiReport, OptimizeError> {
        Ok(self.optimize_multi_status(expr, targets, discount_scales)?.0)
    }

    /// [`Liar::optimize_multi`], also reporting whether the report came
    /// from the attached saturation cache.
    ///
    /// With a cache attached ([`Liar::with_cache`]), the request is keyed
    /// by [`Liar::request_fingerprint`]; a hit returns a clone of the
    /// stored report — **bit-identical** to the run that populated
    /// it, per-step statistics and timings included — and bumps its LRU
    /// recency. A miss computes the report and stores it. Failed requests
    /// ([`OptimizeError`]) are not stored.
    ///
    /// With a durable snapshot store also attached
    /// ([`Liar::with_snapshot_store`]), a cache miss next consults the
    /// store: a restorable on-disk snapshot answers with extraction only
    /// ([`CacheStatus::Warm`] — empty [`steps`](MultiReport::steps), the
    /// original run's stop reason) and the warm report is promoted into
    /// the in-memory cache. Cold computations persist their saturated
    /// e-graph to the store before extracting, so the answer survives the
    /// process.
    pub fn optimize_multi_status(
        &self,
        expr: &Expr,
        targets: &[Target],
        discount_scales: &[f64],
    ) -> Result<(MultiReport, CacheStatus), OptimizeError> {
        let fp = (self.cache.is_some() || self.store.is_some())
            .then(|| self.request_fingerprint(expr, targets, discount_scales));
        if let (Some(cache), Some(fp)) = (&self.cache, fp) {
            if let Some(report) = cache.get(fp) {
                if let Some(flight) = &self.flight {
                    flight.record(FlightKind::CacheHit, fp.to_string(), 0.0);
                }
                return Ok(((*report).clone(), CacheStatus::Hit));
            }
        }
        if let (Some(store), Some(fp)) = (&self.store, fp) {
            let mut sink = self.sink("pipeline");
            let span = sink.begin("snapshot/load");
            let loaded = store.load(fp);
            sink.end_with(
                span,
                &[
                    ("hit", loaded.is_some() as u8 as f64),
                    (
                        "bytes",
                        loaded.as_ref().map_or(0.0, |(_, b)| b.len() as f64),
                    ),
                ],
            );
            drop(sink);
            if let Some((stop_reason, bytes)) = loaded {
                if let Some(result) =
                    self.try_restore_multi(stop_reason, &bytes, expr, targets, discount_scales)
                {
                    if let Some(flight) = &self.flight {
                        flight.record(
                            FlightKind::SnapshotRestore,
                            fp.to_string(),
                            bytes.len() as f64,
                        );
                    }
                    let (report, status) = result?;
                    if let Some(cache) = &self.cache {
                        cache.insert(fp, Arc::new(report.clone()));
                    }
                    return Ok((report, status));
                }
                // The snapshot would not restore (corrupt, stale version,
                // or its graph no longer contains the request's root):
                // fall through to a cold run, whose fresh snapshot
                // overwrites the bad file.
            }
        }
        if let (Some(flight), Some(fp)) = (&self.flight, fp) {
            // A cache is attached but had no answer: the request runs
            // cold. (With no cache attached there is nothing to miss.)
            flight.record(FlightKind::CacheMiss, fp.to_string(), 0.0);
        }
        let report = self.compute_multi(expr, targets, discount_scales)?;
        match (&self.cache, fp) {
            (Some(cache), Some(fp)) => {
                cache.insert(fp, Arc::new(report.clone()));
                Ok((report, CacheStatus::Miss))
            }
            _ => Ok((report, CacheStatus::Uncached)),
        }
    }

    /// Answer a request from a stored snapshot: restore the e-graph, find
    /// the request's root and run extraction only.
    ///
    /// `None` means the snapshot is unusable (restore failed, or the
    /// expression is not in the restored graph) and the caller must run
    /// cold. `Some(Err)` is a genuine [`OptimizeError`] — the restored
    /// graph is fine but the request is unsatisfiable, exactly as a cold
    /// run would report.
    fn try_restore_multi(
        &self,
        stop_reason: StopReason,
        bytes: &[u8],
        expr: &Expr,
        targets: &[Target],
        discount_scales: &[f64],
    ) -> Option<Result<(MultiReport, CacheStatus), OptimizeError>> {
        let mut sink = self.sink("pipeline");
        let span = sink.begin("snapshot/restore");
        let restored = ArrayEGraph::restore(ArrayAnalysis::default(), bytes);
        sink.end_with(
            span,
            &[
                ("bytes", bytes.len() as f64),
                ("ok", restored.is_ok() as u8 as f64),
            ],
        );
        let mut egraph = restored.ok()?;
        let root = egraph.lookup_expr(expr)?;
        let solutions = match self.extract_solutions(
            &mut egraph,
            root,
            expr,
            targets,
            discount_scales,
            &mut sink,
        ) {
            Ok(solutions) => solutions,
            Err(e) => return Some(Err(e)),
        };
        Some(Ok((
            MultiReport {
                targets: targets.to_vec(),
                discount_scales: discount_scales.to_vec(),
                profiles: self.profiles.iter().map(|p| p.name.to_string()).collect(),
                stop_reason,
                // Zero saturation steps ran: the warm answer is extraction
                // over the restored graph.
                steps: Vec::new(),
                saturation_time: Duration::ZERO,
                n_nodes: egraph.num_nodes(),
                n_classes: egraph.num_classes(),
                solutions,
                // A restored snapshot carries no attribution ledger: the
                // counts only make sense over a whole history.
                inspect: None,
            },
            CacheStatus::Warm,
        )))
    }

    /// Saturate `expr` once with the union ruleset of `targets` and hand
    /// back the saturated e-graph plus the root class — the shared first
    /// half of [`Liar::optimize_multi`], for callers that want to run
    /// their own extraction over it (the extraction gym benches tree /
    /// DAG / exact extractors this way; `liar optimize --extractor exact`
    /// does too).
    pub fn saturate_for_targets(
        &self,
        expr: &Expr,
        targets: &[Target],
    ) -> (ArrayEGraph, liar_egraph::Id) {
        let rules = rules_for_targets(targets, &self.config);
        let (mut runner, root) = self.runner_for(expr);
        runner.run(&rules);
        (runner.egraph, root)
    }

    /// Saturate `expr` once with the union ruleset of `targets` under
    /// forced attribution and return the growth tables — the engine
    /// behind `liar inspect`. The returned report always satisfies
    /// [`InspectReport::check`].
    pub fn inspect(&self, expr: &Expr, targets: &[Target]) -> InspectReport {
        let attributed = self.clone().with_attribution(true);
        let rules = rules_for_targets(targets, &attributed.config);
        let (mut runner, _root) = attributed.runner_for(expr);
        runner.run(&rules);
        InspectReport::from_runner(&runner)
    }

    /// The uncached "saturate once, extract everywhere" computation.
    fn compute_multi(
        &self,
        expr: &Expr,
        targets: &[Target],
        discount_scales: &[f64],
    ) -> Result<MultiReport, OptimizeError> {
        let (runner, root) = self.runner_for(expr);
        self.run_multi(runner, root, expr, targets, discount_scales)
    }

    /// Saturate `runner` with the union ruleset and extract everything —
    /// the shared back half of [`Liar::compute_multi`] (cold runner) and
    /// [`Liar::optimize_multi_warm`] (snapshot-seeded runner). With a
    /// snapshot store attached, the saturated e-graph is persisted
    /// *before* proof production touches it, keyed by the request's
    /// fingerprint.
    fn run_multi(
        &self,
        mut runner: Runner<liar_ir::ArrayLang, liar_ir::ArrayAnalysis>,
        root: liar_egraph::Id,
        expr: &Expr,
        targets: &[Target],
        discount_scales: &[f64],
    ) -> Result<MultiReport, OptimizeError> {
        let rules = rules_for_targets(targets, &self.config);

        let initial = SaturationStep {
            step: 0,
            n_nodes: runner.egraph.num_nodes(),
            n_classes: runner.egraph.num_classes(),
            step_time: Duration::ZERO,
            search_time: Duration::ZERO,
            search_candidates: 0,
            frontier_candidates: 0,
            search_matches: 0,
        };
        let mut sink = self.sink("pipeline");
        let sat_span = sink.begin("saturate");
        let sat_start = std::time::Instant::now();
        let stop_reason = runner.run(&rules);
        let saturation_time = sat_start.elapsed();
        sink.end_with(
            sat_span,
            &[
                ("steps", runner.iterations.len() as f64),
                ("nodes", runner.egraph.num_nodes() as f64),
                ("classes", runner.egraph.num_classes() as f64),
            ],
        );

        let mut steps = vec![initial];
        for iter in &runner.iterations {
            steps.push(SaturationStep {
                step: iter.index,
                n_nodes: iter.n_nodes,
                n_classes: iter.n_classes,
                step_time: iter.total_time,
                search_time: iter.search_time,
                search_candidates: iter.search_candidates,
                frontier_candidates: iter.frontier_candidates,
                search_matches: iter.search_matches,
            });
        }

        // Fold the attribution ledger before extraction: proof production
        // may grow the provenance forest, but the growth tables describe
        // the *saturated* graph.
        let inspect = runner
            .egraph
            .is_attribution_enabled()
            .then(|| InspectReport::from_runner(&runner));

        // Persist the saturated e-graph before extraction and proof
        // production: extraction never mutates it, but explain_equivalence
        // grows the provenance forest, and the snapshot must capture the
        // graph every future restore-then-prove will reproduce from.
        if let Some(store) = &self.store {
            let save_span = sink.begin("snapshot/save");
            let mut saved_bytes = 0.0;
            if let Ok(bytes) = runner.egraph.snapshot() {
                saved_bytes = bytes.len() as f64;
                let fp = self.request_fingerprint(expr, targets, discount_scales);
                // Best-effort durability: a full disk must not fail the
                // request itself.
                let _ = store.save(fp, &stop_reason, &bytes);
            }
            sink.end_with(save_span, &[("bytes", saved_bytes)]);
        }

        let solutions = self.extract_solutions(
            &mut runner.egraph,
            root,
            expr,
            targets,
            discount_scales,
            &mut sink,
        )?;

        Ok(MultiReport {
            targets: targets.to_vec(),
            discount_scales: discount_scales.to_vec(),
            profiles: self.profiles.iter().map(|p| p.name.to_string()).collect(),
            stop_reason,
            steps,
            saturation_time,
            n_nodes: runner.egraph.num_nodes(),
            n_classes: runner.egraph.num_classes(),
            solutions,
            inspect,
        })
    }

    /// Extract one [`MultiSolution`] per `(target, scale, profile)` from a
    /// saturated e-graph — the shared extraction half of every multi-target
    /// mode (cold, warm-restored, warm-resumed). Mutates the e-graph only
    /// when explanations are on (proof production grows the provenance
    /// forest).
    fn extract_solutions(
        &self,
        egraph: &mut ArrayEGraph,
        root: liar_egraph::Id,
        expr: &Expr,
        targets: &[Target],
        discount_scales: &[f64],
        sink: &mut TraceSink,
    ) -> Result<Vec<MultiSolution>, OptimizeError> {
        // Flatten the saturated e-graph once; every target × scale ×
        // profile extraction runs over the shared snapshot. The flatten
        // cost is charged to each solution as an equal share of the
        // amortized whole, so per-target `extract_time`s still sum to the
        // real extraction wall-clock.
        let n_extractions =
            (targets.len() * discount_scales.len() * self.profiles.len()).max(1);
        let (n_nodes, n_classes) = (egraph.num_nodes(), egraph.num_classes());
        let flatten_span = sink.begin("extract/flatten");
        let flatten_start = std::time::Instant::now();
        let flat = liar_egraph::FlatGraph::new(egraph);
        let flatten_share = flatten_start.elapsed() / n_extractions as u32;
        sink.end_with(
            flatten_span,
            &[("nodes", n_nodes as f64), ("classes", n_classes as f64)],
        );

        let mut solutions = Vec::with_capacity(n_extractions);
        for &target in targets {
            for &scale in discount_scales {
                for profile in &self.profiles {
                    let cost_fn = TargetCost::new(target)
                        .with_discount_scale(scale)
                        .with_profile(*profile);
                    let err = || OptimizeError {
                        target,
                        discount_scale: scale,
                        profile: profile.name.to_string(),
                    };
                    let span = sink.begin_args(format_args!("extract/{target}"));
                    let start = std::time::Instant::now();
                    let extractor = DagExtractor::with_flat(&flat, cost_fn);
                    let (cost, best) = extractor
                        .tree_extractor()
                        .try_find_best(root)
                        .map_err(|_| err())?;
                    let (dag_cost, dag_best) =
                        extractor.try_find_best(root).map_err(|_| err())?;
                    let stats = extractor.stats();
                    drop(extractor);
                    let extract_time = start.elapsed() + flatten_share;
                    sink.end_with(
                        span,
                        &[
                            ("scale", scale),
                            ("cost", cost),
                            ("dag_cost", dag_cost),
                            ("relaxations", stats.relaxations as f64),
                            ("revisits", stats.revisits as f64),
                            ("passes", stats.passes as f64),
                        ],
                    );
                    let lib_calls = count_lib_calls(&best);
                    solutions.push(MultiSolution {
                        target,
                        discount_scale: scale,
                        profile: profile.name.to_string(),
                        best,
                        cost,
                        dag_best,
                        dag_cost,
                        lib_calls,
                        extract_time,
                        stats,
                        proof: None,
                    });
                }
            }
        }
        drop(flat);
        if self.explain {
            // Proof production mutates the e-graph's provenance forest, so
            // it runs after the shared flatten is released.
            for sol in &mut solutions {
                let span = sink.begin_args(format_args!("explain/{}", sol.target));
                sol.proof = Some(egraph.explain_equivalence(expr, &sol.best));
                let len = sol.proof.as_ref().map_or(0, |p| p.len());
                sink.end_with(span, &[("proof_len", len as f64)]);
            }
        }
        Ok(solutions)
    }

    /// Warm-start saturation from a prior run's snapshot: restore the
    /// e-graph, add `expr` as a new root, and resume saturation with the
    /// snapshot's classes pre-sealed — only the new root's sub-terms (and
    /// what rewriting derives from them) hit the semi-naive frontier, so
    /// the resumed run pays for the *new* work, not the whole graph.
    ///
    /// The counterpart of [`Liar::saturate_for_targets`] for a
    /// structurally-overlapping follow-up request. **Soundness contract:**
    /// the snapshot must come from a run that saturated
    /// ([`StopReason::Saturated`]) under (a superset of) the same
    /// `targets`' union ruleset and rule config — pre-sealed classes are
    /// assumed already searched, so matches a *new* rule would find in old
    /// classes are skipped. Budget-truncated snapshots resume correctly
    /// but may lag a cold run until saturation converges.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] when the snapshot bytes do not restore.
    pub fn saturate_warm(
        &self,
        snapshot: &[u8],
        expr: &Expr,
        targets: &[Target],
    ) -> Result<(ArrayEGraph, liar_egraph::Id), SnapshotError> {
        let rules = rules_for_targets(targets, &self.config);
        let (mut runner, root) = self.warm_runner_for(snapshot, expr)?;
        runner.run(&rules);
        Ok((runner.egraph, root))
    }

    /// [`Liar::optimize_multi`] seeded from a prior run's snapshot
    /// (see [`Liar::saturate_warm`] for the resume semantics and its
    /// soundness contract). The report's step statistics count only the
    /// resumed steps; with a snapshot store attached the resumed
    /// saturation is persisted under the *new* request's fingerprint.
    ///
    /// Proof production ([`Liar::with_explanations`]) requires the
    /// snapshot to have been taken from an explanations-enabled run —
    /// restore re-creates exactly what was saved, so a forest that was
    /// never recorded cannot be queried.
    ///
    /// # Errors
    ///
    /// [`WarmError::Snapshot`] when the snapshot does not restore;
    /// [`WarmError::Optimize`] when some requested extraction has no
    /// finite-cost term (see [`Liar::optimize_multi`]).
    pub fn optimize_multi_warm(
        &self,
        snapshot: &[u8],
        expr: &Expr,
        targets: &[Target],
        discount_scales: &[f64],
    ) -> Result<MultiReport, WarmError> {
        let (runner, root) = self.warm_runner_for(snapshot, expr)?;
        Ok(self.run_multi(runner, root, expr, targets, discount_scales)?)
    }

    /// [`Liar::optimize_multi`] over all three targets at this pipeline's
    /// discount scale.
    ///
    /// # Errors
    ///
    /// See [`Liar::optimize_multi`].
    pub fn optimize_all_targets(&self, expr: &Expr) -> Result<MultiReport, OptimizeError> {
        self.optimize_multi(expr, &Target::ALL, &[self.discount_scale])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_ir::dsl;

    #[test]
    fn vsum_blas_finds_dot() {
        let vsum = dsl::vsum(64, dsl::sym("xs"));
        let report = Liar::new(Target::Blas).with_iter_limit(6).optimize(&vsum);
        let best = report.best();
        assert_eq!(best.lib_calls.get("dot"), Some(&1), "best: {}", best.best);
        assert_eq!(best.solution_summary(), "1 × dot");
    }

    #[test]
    fn vsum_torch_finds_sum() {
        let vsum = dsl::vsum(64, dsl::sym("xs"));
        let report = Liar::new(Target::Torch).with_iter_limit(6).optimize(&vsum);
        let best = report.best();
        assert_eq!(best.lib_calls.get("sum"), Some(&1), "best: {}", best.best);
    }

    #[test]
    fn pure_c_never_calls_libraries() {
        let vsum = dsl::vsum(64, dsl::sym("xs"));
        let report = Liar::new(Target::PureC).with_iter_limit(4).optimize(&vsum);
        for step in &report.steps {
            assert!(step.lib_calls.is_empty(), "pure C solution has calls");
        }
    }

    #[test]
    fn memset_kernel() {
        let memset = dsl::constvec(128, dsl::num(0.0));
        let report = Liar::new(Target::Blas).with_iter_limit(4).optimize(&memset);
        assert_eq!(report.best().solution_summary(), "1 × memset");
        let report = Liar::new(Target::Torch).with_iter_limit(4).optimize(&memset);
        assert_eq!(report.best().solution_summary(), "1 × full");
    }

    #[test]
    fn step_zero_is_initial_expression() {
        let axpy = dsl::vadd(
            16,
            dsl::vscale(16, dsl::sym("alpha"), dsl::sym("A")),
            dsl::sym("B"),
        );
        let report = Liar::new(Target::Blas).with_iter_limit(5).optimize(&axpy);
        assert_eq!(report.steps[0].step, 0);
        assert!(report.steps[0].lib_calls.is_empty());
        // Later steps discover axpy.
        assert_eq!(report.best().solution_summary(), "1 × axpy");
        // Costs only improve over steps.
        for w in report.steps.windows(2) {
            assert!(w[1].cost <= w[0].cost, "cost must be monotone");
        }
    }

    #[test]
    fn multi_target_extracts_every_target_from_one_saturation() {
        let vsum = dsl::vsum(64, dsl::sym("xs"));
        let report = Liar::new(Target::Blas)
            .with_iter_limit(6)
            .optimize_multi(&vsum, &Target::ALL, &[1.0])
            .unwrap();
        assert_eq!(report.solutions.len(), 3);
        assert!(report.solutions.iter().all(|s| s.profile == "default"));
        assert_eq!(
            report.solution(Target::Blas).unwrap().solution_summary(),
            "1 × dot"
        );
        assert_eq!(
            report.solution(Target::Torch).unwrap().solution_summary(),
            "1 × sum"
        );
        let pure_c = report.solution(Target::PureC).unwrap();
        assert!(pure_c.lib_calls.is_empty(), "pure C solution has calls");
        for s in &report.solutions {
            assert!(
                s.dag_cost <= s.cost,
                "{}: dag {} > tree {}",
                s.target,
                s.dag_cost,
                s.cost
            );
            assert!(s.sharing_discount() >= 0.0);
        }
        // Step 0 records the un-rewritten e-graph; later steps grow it.
        assert_eq!(report.steps[0].step, 0);
        assert!(report.steps.len() > 1);
        assert!(report.n_nodes >= report.steps[0].n_nodes);
    }

    #[test]
    fn multi_target_discount_sweep() {
        let vsum = dsl::vsum(100, dsl::sym("xs"));
        let report = Liar::new(Target::Blas)
            .with_iter_limit(6)
            .optimize_multi(&vsum, &[Target::Blas], &[1.0, 20.0])
            .unwrap();
        assert_eq!(report.solutions.len(), 2);
        // At the paper's factors the call wins; at scale 20 it loses.
        assert_eq!(
            report.solution_at(Target::Blas, 1.0).unwrap().solution_summary(),
            "1 × dot"
        );
        assert_eq!(
            report.solution_at(Target::Blas, 20.0).unwrap().solution_summary(),
            "—"
        );
    }

    #[test]
    fn unextractable_request_is_a_structured_error() {
        // The input *is* a BLAS call: under the Torch model every
        // equivalent term prices at infinity, so the request must fail
        // with a structured error, not a panic.
        let axpy: Expr = "(axpy #8 alpha A B)".parse().unwrap();
        let err = Liar::new(Target::Torch)
            .with_iter_limit(2)
            .optimize_multi(&axpy, &[Target::Torch], &[1.0])
            .unwrap_err();
        assert_eq!(err.target, Target::Torch);
        assert_eq!(err.profile, "default");
        assert!(err.to_string().contains("no extractable solution"));
        // The same request for BLAS succeeds.
        assert!(Liar::new(Target::Blas)
            .with_iter_limit(2)
            .optimize_multi(&axpy, &[Target::Blas], &[1.0])
            .is_ok());
    }

    #[test]
    fn machine_profiles_multiply_solutions_not_saturations() {
        let vsum = dsl::vsum(100, dsl::sym("xs"));
        let report = Liar::new(Target::Blas)
            .with_iter_limit(6)
            .with_profiles(vec![MachineProfile::default(), MachineProfile::gpu()])
            .optimize_multi(&vsum, &[Target::Blas], &[1.0])
            .unwrap();
        // One saturation, two profile extractions.
        assert_eq!(report.solutions.len(), 2);
        assert_eq!(report.profiles, vec!["default", "gpu"]);
        let default = report.solution_for(Target::Blas, 1.0, "default").unwrap();
        let gpu = report.solution_for(Target::Blas, 1.0, "gpu").unwrap();
        // Both find the dot, but the gpu profile prices it differently.
        assert_eq!(default.solution_summary(), "1 × dot");
        assert_eq!(gpu.solution_summary(), "1 × dot");
        assert_ne!(default.cost, gpu.cost);
    }

    #[test]
    fn profiled_requests_have_distinct_fingerprints() {
        let vsum = dsl::vsum(64, dsl::sym("xs"));
        let base = Liar::new(Target::Blas);
        let gpu = Liar::new(Target::Blas).with_profiles(vec![MachineProfile::gpu()]);
        assert_ne!(
            base.request_fingerprint(&vsum, &[Target::Blas], &[1.0]),
            gpu.request_fingerprint(&vsum, &[Target::Blas], &[1.0]),
            "profile changes must miss the saturation cache"
        );
    }

    fn store_in(tag: &str) -> (Arc<SnapshotStore>, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "liar-pipeline-store-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        (Arc::new(SnapshotStore::open(&dir).unwrap()), dir)
    }

    fn assert_same_solutions(warm: &MultiReport, cold: &MultiReport) {
        assert_eq!(warm.solutions.len(), cold.solutions.len());
        for (w, c) in warm.solutions.iter().zip(&cold.solutions) {
            assert_eq!(w.target, c.target);
            assert_eq!(w.best, c.best, "{}: tree solution diverged", w.target);
            assert_eq!(w.cost, c.cost);
            assert_eq!(w.dag_best, c.dag_best);
            assert_eq!(w.dag_cost, c.dag_cost);
            assert_eq!(w.lib_calls, c.lib_calls);
        }
    }

    #[test]
    fn snapshot_store_answers_warm_without_saturating() {
        let (store, dir) = store_in("warm");
        let liar = Liar::new(Target::Blas)
            .with_iter_limit(6)
            .with_snapshot_store(Arc::clone(&store));
        let vsum = dsl::vsum(64, dsl::sym("xs"));
        let (cold, s1) = liar
            .optimize_multi_status(&vsum, &Target::ALL, &[1.0])
            .unwrap();
        assert_eq!(s1, CacheStatus::Uncached, "no in-memory cache attached");
        assert_eq!(store.len(), 1, "the cold run persisted its snapshot");
        let (warm, s2) = liar
            .optimize_multi_status(&vsum, &Target::ALL, &[1.0])
            .unwrap();
        assert_eq!(s2, CacheStatus::Warm);
        assert!(warm.steps.is_empty(), "warm answers run zero saturation steps");
        assert_eq!(warm.stop_reason, cold.stop_reason);
        assert_eq!(warm.n_nodes, cold.n_nodes);
        assert_eq!(warm.n_classes, cold.n_classes);
        assert_same_solutions(&warm, &cold);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_store_file_falls_back_cold_and_self_heals() {
        let (store, dir) = store_in("heal");
        let liar = Liar::new(Target::Blas)
            .with_iter_limit(4)
            .with_snapshot_store(Arc::clone(&store));
        let memset = dsl::constvec(128, dsl::num(0.0));
        let fp = liar.request_fingerprint(&memset, &[Target::Blas], &[1.0]);
        let (cold, _) = liar
            .optimize_multi_status(&memset, &[Target::Blas], &[1.0])
            .unwrap();
        // Vandalize the stored snapshot: the next request must not trust
        // it — and must not fail either.
        std::fs::write(store.path_for(fp), b"garbage, not a snapshot").unwrap();
        let (healed, status) = liar
            .optimize_multi_status(&memset, &[Target::Blas], &[1.0])
            .unwrap();
        assert_eq!(status, CacheStatus::Uncached, "corrupt snapshot runs cold");
        assert_same_solutions(&healed, &cold);
        // The cold run overwrote the bad file; the store works again.
        let (_, status) = liar
            .optimize_multi_status(&memset, &[Target::Blas], &[1.0])
            .unwrap();
        assert_eq!(status, CacheStatus::Warm, "store self-healed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_restore_promotes_into_memory_cache() {
        let (store, dir) = store_in("promote");
        let cache = Arc::new(crate::cache::SaturationCache::new(usize::MAX));
        let make = || {
            Liar::new(Target::Blas)
                .with_iter_limit(4)
                .with_snapshot_store(Arc::clone(&store))
        };
        let memset = dsl::constvec(128, dsl::num(0.0));
        // First process: cold, persists to disk (no shared memory cache).
        let (cold, s) = make()
            .optimize_multi_status(&memset, &[Target::Blas], &[1.0])
            .unwrap();
        assert_eq!(s, CacheStatus::Uncached);
        // "Second process": fresh memory cache, same store directory.
        let liar = make().with_cache(Arc::clone(&cache));
        let (warm, s) = liar
            .optimize_multi_status(&memset, &[Target::Blas], &[1.0])
            .unwrap();
        assert_eq!(s, CacheStatus::Warm, "disk answers across the boundary");
        let (hit, s) = liar
            .optimize_multi_status(&memset, &[Target::Blas], &[1.0])
            .unwrap();
        assert_eq!(s, CacheStatus::Hit, "warm report was promoted");
        assert_eq!(hit, warm, "hits replay the promoted report bit-identically");
        assert_same_solutions(&warm, &cold);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_restore_replays_proofs() {
        let (store, dir) = store_in("proofs");
        let liar = Liar::new(Target::Blas)
            .with_iter_limit(6)
            .with_explanations(true)
            .with_snapshot_store(Arc::clone(&store));
        let vsum = dsl::vsum(64, dsl::sym("xs"));
        let (cold, _) = liar
            .optimize_multi_status(&vsum, &[Target::Blas], &[1.0])
            .unwrap();
        let (warm, status) = liar
            .optimize_multi_status(&vsum, &[Target::Blas], &[1.0])
            .unwrap();
        assert_eq!(status, CacheStatus::Warm);
        let rules = rules_for_targets(&[Target::Blas], &RuleConfig::default());
        for (w, c) in warm.solutions.iter().zip(&cold.solutions) {
            let wp = w.proof.as_ref().expect("warm solution carries a proof");
            let cp = c.proof.as_ref().expect("cold solution carries a proof");
            wp.check(&rules).expect("warm proof replays");
            assert_eq!(
                format!("{wp:?}"),
                format!("{cp:?}"),
                "restored forest yields the identical proof"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_resume_equals_cold_on_saturating_kernel() {
        // axpy saturates under the BLAS union ruleset, so a warm resume
        // from its own snapshot must search an empty frontier, stop
        // saturated, and extract the identical solutions.
        let axpy = dsl::vadd(
            16,
            dsl::vscale(16, dsl::sym("alpha"), dsl::sym("A")),
            dsl::sym("B"),
        );
        let liar = Liar::new(Target::Blas).with_iter_limit(10);
        let cold = liar.optimize_multi(&axpy, &[Target::Blas], &[1.0]).unwrap();
        assert_eq!(cold.stop_reason, StopReason::Saturated, "axpy must saturate");
        let (egraph, _) = liar.saturate_for_targets(&axpy, &[Target::Blas]);
        let snapshot = egraph.snapshot().unwrap();
        let warm = liar
            .optimize_multi_warm(&snapshot, &axpy, &[Target::Blas], &[1.0])
            .unwrap();
        assert_eq!(warm.stop_reason, StopReason::Saturated);
        assert_same_solutions(&warm, &cold);
        // The resumed graph equals the saturated one: nothing new to find.
        assert_eq!(warm.n_nodes, cold.n_nodes);
        assert_eq!(warm.n_classes, cold.n_classes);
    }

    #[test]
    fn warm_resume_with_new_root_matches_cold_solution() {
        // Seed with a saturated memset graph, then warm-start a
        // structurally different request: the resumed run must find the
        // same solution the cold pipeline finds for the new root.
        let liar = Liar::new(Target::Blas).with_iter_limit(10);
        let memset = dsl::constvec(128, dsl::num(0.0));
        let (egraph, _) = liar.saturate_for_targets(&memset, &[Target::Blas]);
        let snapshot = egraph.snapshot().unwrap();
        let axpy = dsl::vadd(
            16,
            dsl::vscale(16, dsl::sym("alpha"), dsl::sym("A")),
            dsl::sym("B"),
        );
        let cold = liar.optimize_multi(&axpy, &[Target::Blas], &[1.0]).unwrap();
        let warm = liar
            .optimize_multi_warm(&snapshot, &axpy, &[Target::Blas], &[1.0])
            .unwrap();
        let (w, c) = (&warm.solutions[0], &cold.solutions[0]);
        assert_eq!(w.lib_calls, c.lib_calls, "warm: {}", w.best);
        assert_eq!(w.cost, c.cost);
        assert_eq!(w.solution_summary(), "1 × axpy");
        // The warm graph also still contains the seed's solution.
        assert!(warm.n_nodes > cold.n_nodes, "seed classes are retained");
    }

    #[test]
    fn warm_start_on_garbage_is_a_structured_error() {
        let liar = Liar::new(Target::Blas).with_iter_limit(2);
        let vsum = dsl::vsum(8, dsl::sym("xs"));
        let err = liar
            .optimize_multi_warm(b"not a snapshot", &vsum, &[Target::Blas], &[1.0])
            .unwrap_err();
        assert!(matches!(err, WarmError::Snapshot(_)), "got {err}");
        assert!(err.to_string().contains("restore"));
    }

    #[test]
    fn gemv_kernel_blas_converges_to_gemv() {
        let (n, m) = (24, 32);
        let gemv = dsl::vadd(
            n,
            dsl::vscale(n, dsl::sym("alpha"), dsl::matvec(n, m, dsl::sym("A"), dsl::sym("B"))),
            dsl::vscale(n, dsl::sym("beta"), dsl::sym("C")),
        );
        let report = Liar::new(Target::Blas).with_iter_limit(8).optimize(&gemv);
        assert_eq!(report.best().solution_summary(), "1 × gemv");
        // The paper's fig. 4a: early steps find dot, later steps converge.
        let sequence: Vec<_> = report
            .steps
            .iter()
            .map(|s| s.solution_summary())
            .collect();
        assert!(
            sequence.iter().any(|s| s.contains("dot")),
            "intermediate dot solutions expected: {sequence:?}"
        );
    }
}
