//! The extraction cost models (paper §V-C, listings 6–8).
//!
//! The base cost charges loop bodies per iteration (`build`/`ifold`
//! multiply by their extent). Library calls are *discounted* relative to
//! the equivalent loop nest — `.8N` for vector ops, `.7NM` / `.6NMK` for
//! matrix ops, `.9NM` for transpose — which is what makes extraction prefer
//! them once recognized. Calls not offered by the active target cost
//! infinity, so the pure-C target never extracts a call.

use liar_egraph::{CostFunction, EGraph, Id};
use liar_ir::{ArrayAnalysis, ArrayLang, LibFn};

use crate::profile::MachineProfile;
use crate::rules::Target;

type AEGraph = EGraph<ArrayLang, ArrayAnalysis>;

/// The extent carried by an extent child (a call's dim argument, or the
/// first child of `build`/`ifold`).
///
/// # Invariant
///
/// The class must carry a known extent: every extent position the rules
/// ever produce is a `Dim` leaf, whose analysis records the value. A class
/// without one means an ill-formed call or loop reached extraction; debug
/// builds assert this, release builds fall back to extent 1 (which
/// silently *under*-charges the loop or call).
fn dim(egraph: &AEGraph, id: Id) -> f64 {
    let extent = egraph.data(id).dim;
    debug_assert!(
        extent.is_some(),
        "cost model read an extent from class {id}, which has none — \
         ill-formed call or loop header"
    );
    extent.unwrap_or(1) as f64
}

/// The target-specific cost model: base cost (listing 6) plus the active
/// library's call costs (listing 7 for BLAS, listing 8 for PyTorch).
///
/// The listings' discount factors (.8N for vector calls, .7NM / .6NMK for
/// matrix calls, "chosen semi-arbitrarily" per the paper) can be scaled
/// for ablation: [`TargetCost::with_discount_scale`] multiplies the
/// per-call term, so a scale ≥ 1.25 makes a `dot` cost as much as the
/// loop it replaces and extraction stops preferring library calls.
///
/// Orthogonally, a [`MachineProfile`] re-weights scalar loop work against
/// vector and matrix library calls ([`TargetCost::with_profile`]): the
/// default profile is the identity, so its costs are bit-identical to the
/// unprofiled model.
#[derive(Debug, Clone, Copy)]
pub struct TargetCost {
    target: Target,
    discount_scale: f64,
    profile: MachineProfile,
}

impl TargetCost {
    /// Cost model for a target with the paper's discount factors and the
    /// default (identity) machine profile.
    pub fn new(target: Target) -> Self {
        TargetCost {
            target,
            discount_scale: 1.0,
            profile: MachineProfile::default(),
        }
    }

    /// Re-weight the model for a machine ([`MachineProfile`]): scalar
    /// units scale by `loop_scale`, vector/matrix calls by their category
    /// factor, and every call pays `call_overhead` on top.
    pub fn with_profile(mut self, profile: MachineProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The scalar unit of listing 6 under the active profile.
    fn unit(&self) -> f64 {
        self.profile.loop_scale
    }

    /// Scale the library-call discount factors (1.0 = the paper's values;
    /// larger = library calls less attractive).
    ///
    /// # Panics
    ///
    /// Panics when `scale` is not finite and positive.
    pub fn with_discount_scale(mut self, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "bad discount scale");
        self.discount_scale = scale;
        self
    }

    fn call_available(&self, f: LibFn) -> bool {
        match self.target {
            Target::PureC => false,
            Target::Blas => f.in_blas(),
            Target::Torch => f.in_torch(),
        }
    }

    fn call_cost<F: FnMut(Id) -> f64>(
        &self,
        egraph: &AEGraph,
        f: LibFn,
        args: &[Id],
        child_cost: &mut F,
    ) -> f64 {
        if !self.call_available(f) {
            return f64::INFINITY;
        }
        // Sum of argument costs (dims cost 0), plus the discounted call.
        let args_cost: f64 = args[f.n_dims()..].iter().map(|&a| child_cost(a)).sum();
        let d: Vec<f64> = args[..f.n_dims()].iter().map(|&a| dim(egraph, a)).collect();
        // Vector calls scale by the profile's vector factor, matrix calls
        // by its matrix factor.
        let (call, category) = match f {
            LibFn::Memset => (0.8 * d[0] + 1.0, self.profile.vector_scale),
            LibFn::Dot => (0.8 * d[0], self.profile.vector_scale),
            LibFn::Axpy => (0.8 * d[0], self.profile.vector_scale),
            LibFn::Gemv { .. } => (0.7 * d[0] * d[1], self.profile.matrix_scale),
            LibFn::Gemm { .. } => (0.6 * d[0] * d[1] * d[2], self.profile.matrix_scale),
            LibFn::Transpose => (0.9 * d[0] * d[1], self.profile.matrix_scale),
            LibFn::TAdd => (0.4 * d[0] + 0.4 * d[0], self.profile.vector_scale),
            LibFn::TMul => (0.4 * d[0] + 0.4, self.profile.vector_scale),
            LibFn::TMv => (0.7 * d[0] * d[1], self.profile.matrix_scale),
            LibFn::TMm => (0.6 * d[0] * d[1] * d[2], self.profile.matrix_scale),
            LibFn::TSum => (0.8 * d[0], self.profile.vector_scale),
            LibFn::TFull => (0.8 * d[0] + 1.0, self.profile.vector_scale),
        };
        args_cost + self.discount_scale * category * call + self.profile.call_overhead
    }
}

impl CostFunction<ArrayLang, ArrayAnalysis> for TargetCost {
    fn cost<F: FnMut(Id) -> f64>(
        &self,
        egraph: &AEGraph,
        enode: &ArrayLang,
        child_cost: &mut F,
    ) -> f64 {
        // Every scalar unit of listing 6 is one `self.unit()` (1.0 under
        // the default profile — bit-identical to the unprofiled model).
        let u = self.unit();
        match enode {
            // Extents are compile-time: free.
            ArrayLang::Dim(_) => 0.0,
            ArrayLang::Const(_) | ArrayLang::Sym(_) | ArrayLang::Var(_) => u,
            ArrayLang::Lam(b) => child_cost(*b) + u,
            ArrayLang::App([f, x]) => child_cost(*f) + child_cost(*x) + u,
            ArrayLang::Build([n, f]) => {
                dim(egraph, *n) * (child_cost(*f) + u) + u
            }
            ArrayLang::Get([a, i]) => child_cost(*a) + child_cost(*i) + u,
            ArrayLang::IFold([n, init, f]) => {
                child_cost(*init) + dim(egraph, *n) * child_cost(*f) + u
            }
            ArrayLang::Tuple([a, b]) => child_cost(*a) + child_cost(*b) + u,
            ArrayLang::Fst(t) | ArrayLang::Snd(t) => child_cost(*t) + u,
            ArrayLang::Add([a, b])
            | ArrayLang::Sub([a, b])
            | ArrayLang::Mul([a, b])
            | ArrayLang::Div([a, b])
            | ArrayLang::Gt([a, b]) => child_cost(*a) + child_cost(*b) + u,
            ArrayLang::Call(f, args) => self.call_cost(egraph, *f, args, child_cost),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_egraph::Extractor;
    use liar_ir::{dsl, ArrayEGraph, Expr};

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    fn cost_of(target: Target, s: &str) -> f64 {
        let mut eg = ArrayEGraph::default();
        let id = eg.add_expr(&e(s));
        let ex = Extractor::new(&eg, TargetCost::new(target));
        ex.best_cost(id).unwrap()
    }

    #[test]
    fn base_costs_follow_listing_6() {
        // cost(build N f) = N(cost f + 1) + 1 with f = (λ 0): N·3 + 1.
        assert_eq!(cost_of(Target::PureC, "(build #8 (lam 0))"), 8.0 * 3.0 + 1.0);
        // cost(a[i]) = 1 + 1 + 1.
        assert_eq!(cost_of(Target::PureC, "(get a i)"), 3.0);
        // cost(ifold N init f): 1 + N·cost(f) + 1 with f = (λ λ •0): cost 3.
        assert_eq!(
            cost_of(Target::PureC, "(ifold #8 0 (lam (lam %0)))"),
            1.0 + 8.0 * 3.0 + 1.0
        );
        assert_eq!(cost_of(Target::PureC, "(tuple 1 2)"), 3.0);
        assert_eq!(cost_of(Target::PureC, "(fst (tuple 1 2))"), 4.0);
    }

    #[test]
    fn dims_are_free() {
        assert_eq!(cost_of(Target::PureC, "#128"), 0.0);
    }

    #[test]
    fn library_calls_unavailable_in_pure_c() {
        let mut eg = ArrayEGraph::default();
        let call = eg.add_expr(&e("(dot #8 a b)"));
        let loopy = eg.add_expr(&dsl::dot(8, dsl::sym("a"), dsl::sym("b")));
        eg.union(call, loopy);
        eg.rebuild();
        let ex = Extractor::new(&eg, TargetCost::new(Target::PureC));
        // Pure C can still extract (the loop form), but never the call.
        let (_, best) = ex.find_best(call);
        assert!(
            best.nodes().iter().all(|n| n.as_call().is_none()),
            "pure C must not extract library calls"
        );
    }

    #[test]
    fn blas_prefers_dot_over_loop() {
        let mut eg = ArrayEGraph::default();
        let loopy = eg.add_expr(&dsl::dot(100, dsl::sym("a"), dsl::sym("b")));
        let call = eg.add_expr(&e("(dot #100 a b)"));
        eg.union(call, loopy);
        eg.rebuild();
        let ex = Extractor::new(&eg, TargetCost::new(Target::Blas));
        let (cost, best) = ex.find_best(loopy);
        assert_eq!(best.to_string(), "(dot #100 a b)");
        // cost a + cost b + .8N = 1 + 1 + 80.
        assert_eq!(cost, 82.0);
    }

    #[test]
    fn blas_call_costs_follow_listing_7() {
        assert_eq!(cost_of(Target::Blas, "(memset #10 0)"), 1.0 + 8.0 + 1.0);
        assert_eq!(cost_of(Target::Blas, "(axpy #10 alpha A B)"), 3.0 + 8.0);
        assert_eq!(
            cost_of(Target::Blas, "(gemv #10 #20 alpha A B beta C)"),
            5.0 + 0.7 * 200.0
        );
        assert_eq!(
            cost_of(Target::Blas, "(gemmFT #10 #20 #30 alpha A B beta C)"),
            5.0 + 0.6 * 6000.0
        );
        assert_eq!(cost_of(Target::Blas, "(transpose #10 #20 A)"), 1.0 + 180.0);
    }

    #[test]
    fn torch_call_costs_follow_listing_8() {
        assert_eq!(cost_of(Target::Torch, "(full #10 0)"), 1.0 + 8.0 + 1.0);
        assert_eq!(cost_of(Target::Torch, "(sum #10 A)"), 1.0 + 8.0);
        assert_eq!(cost_of(Target::Torch, "(add #10 A B)"), 2.0 + 8.0);
        assert_eq!(cost_of(Target::Torch, "(mv #10 #20 A B)"), 2.0 + 140.0);
        assert_eq!(
            cost_of(Target::Torch, "(mm #10 #20 #30 A B)"),
            2.0 + 0.6 * 6000.0
        );
    }

    #[test]
    fn machine_profiles_reweight_the_model() {
        let base = cost_of(Target::Blas, "(gemv #10 #20 alpha A B beta C)");
        let mut eg = ArrayEGraph::default();
        let id = eg.add_expr(&e("(gemv #10 #20 alpha A B beta C)"));
        // The default profile is the identity: bit-identical cost.
        let same = Extractor::new(
            &eg,
            TargetCost::new(Target::Blas).with_profile(MachineProfile::default()),
        );
        assert_eq!(same.best_cost(id), Some(base));
        // GPU: 5 scalar args at loop_scale 2, the matrix call at factor
        // 0.25, plus the launch overhead.
        let gpu = Extractor::new(
            &eg,
            TargetCost::new(Target::Blas).with_profile(MachineProfile::gpu()),
        );
        assert_eq!(gpu.best_cost(id), Some(10.0 + 0.25 * 140.0 + 5.0));
    }

    #[test]
    fn gpu_profile_prefers_calls_harder() {
        // The 100-element dot: call 82 vs loop 1102 nominally. Under the
        // GPU profile the loop doubles while the call shrinks to
        // 2·2 + 0.5·80 + 5 = 49: the call's margin widens.
        let mut eg = ArrayEGraph::default();
        let loopy = eg.add_expr(&dsl::dot(100, dsl::sym("a"), dsl::sym("b")));
        let call = eg.add_expr(&e("(dot #100 a b)"));
        eg.union(call, loopy);
        eg.rebuild();
        let ex = Extractor::new(
            &eg,
            TargetCost::new(Target::Blas).with_profile(MachineProfile::gpu()),
        );
        let (cost, best) = ex.find_best(loopy);
        assert_eq!(best.to_string(), "(dot #100 a b)");
        assert_eq!(cost, 2.0 + 2.0 + 0.5 * 80.0 + 5.0);
    }

    #[test]
    fn discount_scale_disables_calls() {
        // At the paper's factors a 100-element dot call (cost 82) beats
        // the loop (cost 1102); at scale 20 the call costs 1602 and loses.
        let mut eg = ArrayEGraph::default();
        let loopy = eg.add_expr(&dsl::dot(100, dsl::sym("a"), dsl::sym("b")));
        let call = eg.add_expr(&e("(dot #100 a b)"));
        eg.union(call, loopy);
        eg.rebuild();
        let cheap = Extractor::new(&eg, TargetCost::new(Target::Blas));
        assert!(cheap.find_best(loopy).1.to_string().starts_with("(dot"));
        let dear = Extractor::new(
            &eg,
            TargetCost::new(Target::Blas).with_discount_scale(20.0),
        );
        assert!(dear.find_best(loopy).1.to_string().starts_with("(ifold"));
    }

    #[test]
    fn cross_target_calls_are_infinite() {
        let mut eg = ArrayEGraph::default();
        let axpy = eg.add_expr(&e("(axpy #8 alpha A B)"));
        let ex = Extractor::new(&eg, TargetCost::new(Target::Torch));
        assert_eq!(ex.best_cost(axpy), None, "axpy is not a torch function");
    }
}
