//! LIAR proper: Latent Idiom Array Rewriting (paper §III–§V).
//!
//! This crate assembles the reproduction's moving parts into the workflow of
//! the paper's fig. 2:
//!
//! 1. a kernel written in the minimalist IR is converted into an e-graph;
//! 2. equality saturation applies the **language-semantics rules**
//!    ([`rules::core_rules`], listing 2), the **scalar rules**
//!    ([`rules::scalar_rules`], listing 3), and the **target idiom rules**
//!    ([`rules::blas_rules`] / [`rules::torch_rules`], listings 4–5);
//! 3. after every saturation step a **target cost model**
//!    ([`cost::TargetCost`], listings 6–8) extracts the best expression,
//!    which now exposes library calls.
//!
//! The entry point is [`Liar`]:
//!
//! ```
//! use liar_core::{Liar, Target};
//! use liar_ir::dsl;
//!
//! // Vector sum: ifold n 0 (λ λ xs[•1] + •0) — contains a latent dot.
//! let vsum = dsl::vsum(64, dsl::sym("xs"));
//! let report = Liar::new(Target::Blas).with_iter_limit(6).optimize(&vsum);
//! let best = report.best();
//! // LIAR discovers sum(v) = dot(v, fill(1)):
//! assert_eq!(best.lib_calls.get("dot"), Some(&1));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cache;
pub mod cost;
pub mod fingerprint;
pub mod inspect;
pub mod pipeline;
pub mod profile;
pub mod rules;
pub mod store;

pub use cache::{CacheStats, SaturationCache};
pub use cost::TargetCost;
pub use fingerprint::{BudgetKnobs, Fingerprint};
pub use inspect::{InspectReport, OpRow, RuleRow};
pub use pipeline::{
    CacheStatus, Liar, MultiReport, MultiSolution, OptimizationReport, OptimizeError,
    SaturationStep, StepReport, WarmError,
};
pub use store::SnapshotStore;
pub use profile::MachineProfile;
pub use rules::{RuleConfig, Target};
