//! A durable, content-addressed store of saturated e-graph snapshots.
//!
//! The in-memory [`SaturationCache`](crate::cache::SaturationCache) replays
//! finished [`MultiReport`](crate::pipeline::MultiReport)s but dies with the
//! process. The [`SnapshotStore`] persists the *e-graph itself* — the
//! versioned binary format of [`liar_egraph::snapshot`] — keyed by
//! [`request_fingerprint`](crate::Liar::request_fingerprint), so a restarted
//! serve node (or a different node that mounts the same directory) can
//! restore a prior saturation and answer with extraction only: zero
//! saturation steps, same solutions, same proofs.
//!
//! # Layout
//!
//! One file per request under the store directory:
//!
//! ```text
//! <dir>/<32-hex-fingerprint>.snap
//! ```
//!
//! Each file is a small header — the run's stop reason, so a warm answer
//! reports why the original saturation stopped — followed by the e-graph
//! snapshot bytes verbatim. The snapshot bytes carry their own magic,
//! version and checksum ([`liar_egraph::SNAPSHOT_MAGIC`]), so a truncated
//! or bit-flipped file fails [`liar_egraph::EGraph::restore`] with a
//! structured error rather than restoring garbage; callers treat any load
//! or restore failure as a miss and fall back to a cold run (the store is
//! self-healing: the recomputed snapshot overwrites the bad file).
//!
//! Writes go to a `.tmp` sibling first and are renamed into place, so a
//! crash mid-save never leaves a half-written `.snap` visible and
//! concurrent readers only ever see complete files.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use liar_egraph::StopReason;

use crate::fingerprint::Fingerprint;

/// Magic bytes opening every store file (distinct from the e-graph
/// snapshot magic inside, so mixing the two formats up is caught at
/// offset 0).
pub const STORE_MAGIC: [u8; 8] = *b"LIARSTOR";

/// An on-disk store of e-graph snapshots, one file per request
/// fingerprint. See the [module docs](self) for the format.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Open (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a fingerprint maps to (exists or not).
    pub fn path_for(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{fp}.snap"))
    }

    /// True when a snapshot for `fp` is on disk (it may still fail to
    /// restore; [`SnapshotStore::load`] is the authoritative check).
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.path_for(fp).is_file()
    }

    /// Number of `.snap` files currently in the store.
    pub fn len(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        entries
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|x| x == "snap"))
            .count()
    }

    /// True when the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persist `snapshot` (the bytes of [`liar_egraph::EGraph::snapshot`])
    /// for `fp`, recording the saturation's `stop_reason` alongside.
    /// Overwrites any previous snapshot for the same fingerprint.
    ///
    /// The write is atomic: bytes land in `<fp>.snap.tmp` first, then a
    /// rename publishes them.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from writing or renaming.
    pub fn save(
        &self,
        fp: Fingerprint,
        stop_reason: &StopReason,
        snapshot: &[u8],
    ) -> io::Result<()> {
        let reason = stop_reason_name(stop_reason);
        let final_path = self.path_for(fp);
        let tmp_path = self.dir.join(format!("{fp}.snap.tmp"));
        {
            let mut f = fs::File::create(&tmp_path)?;
            f.write_all(&STORE_MAGIC)?;
            f.write_all(&(reason.len() as u32).to_le_bytes())?;
            f.write_all(reason.as_bytes())?;
            f.write_all(snapshot)?;
            f.sync_all()?;
        }
        fs::rename(&tmp_path, &final_path)
    }

    /// Load the snapshot for `fp`: the recorded stop reason plus the
    /// e-graph snapshot bytes, ready for
    /// [`liar_egraph::EGraph::restore`].
    ///
    /// Returns `None` when the file is missing or its *store* header is
    /// unreadable (wrong magic, truncated, unknown stop reason). The
    /// snapshot bytes themselves are **not** validated here — restore
    /// does that (checksum and all) and callers fall back to a cold run
    /// on its errors too.
    pub fn load(&self, fp: Fingerprint) -> Option<(StopReason, Vec<u8>)> {
        let mut f = fs::File::open(self.path_for(fp)).ok()?;
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic).ok()?;
        if magic != STORE_MAGIC {
            return None;
        }
        let mut len = [0u8; 4];
        f.read_exact(&mut len).ok()?;
        let len = u32::from_le_bytes(len) as usize;
        if len > 64 {
            return None; // No stop-reason name is this long: corrupt.
        }
        let mut reason = vec![0u8; len];
        f.read_exact(&mut reason).ok()?;
        let reason = stop_reason_from_name(std::str::from_utf8(&reason).ok()?)?;
        let mut snapshot = Vec::new();
        f.read_to_end(&mut snapshot).ok()?;
        Some((reason, snapshot))
    }

    /// Remove the snapshot for `fp`, if present. Missing files are not an
    /// error (a concurrent writer may have already replaced or removed
    /// it).
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] other than "not found".
    pub fn remove(&self, fp: Fingerprint) -> io::Result<()> {
        match fs::remove_file(self.path_for(fp)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }
}

/// The stable wire name of a stop reason (its `Display` form). Public so
/// protocol layers shipping snapshots between nodes can reuse the exact
/// names the store files use.
pub fn stop_reason_name(reason: &StopReason) -> &'static str {
    match reason {
        StopReason::Saturated => "saturated",
        StopReason::IterationLimit => "iteration limit",
        StopReason::NodeLimit => "node limit",
        StopReason::TimeLimit => "time limit",
    }
}

/// Parse a stop reason back from its wire name
/// ([`stop_reason_name`]'s inverse).
pub fn stop_reason_from_name(name: &str) -> Option<StopReason> {
    Some(match name {
        "saturated" => StopReason::Saturated,
        "iteration limit" => StopReason::IterationLimit,
        "node limit" => StopReason::NodeLimit,
        "time limit" => StopReason::TimeLimit,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "liar-store-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn save_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let bytes = vec![1u8, 2, 3, 4, 5];
        store
            .save(fp(42), &StopReason::Saturated, &bytes)
            .unwrap();
        assert!(store.contains(fp(42)));
        assert_eq!(store.len(), 1);
        let (reason, loaded) = store.load(fp(42)).unwrap();
        assert_eq!(reason, StopReason::Saturated);
        assert_eq!(loaded, bytes);
        // Every stop reason survives the header.
        for reason in [
            StopReason::IterationLimit,
            StopReason::NodeLimit,
            StopReason::TimeLimit,
        ] {
            store.save(fp(7), &reason, &bytes).unwrap();
            assert_eq!(store.load(fp(7)).unwrap().0, reason);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_and_corrupt_headers_are_misses() {
        let dir = tmp_dir("corrupt");
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.load(fp(1)).is_none(), "missing file is a miss");
        // Wrong magic.
        fs::write(store.path_for(fp(2)), b"NOTLIARX____").unwrap();
        assert!(store.load(fp(2)).is_none());
        // Truncated header.
        fs::write(store.path_for(fp(3)), &STORE_MAGIC[..5]).unwrap();
        assert!(store.load(fp(3)).is_none());
        // Unknown stop reason.
        let mut bad = STORE_MAGIC.to_vec();
        bad.extend_from_slice(&4u32.to_le_bytes());
        bad.extend_from_slice(b"bogu");
        fs::write(store.path_for(fp(4)), &bad).unwrap();
        assert!(store.load(fp(4)).is_none());
        // Absurd length field.
        let mut huge = STORE_MAGIC.to_vec();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        fs::write(store.path_for(fp(5)), &huge).unwrap();
        assert!(store.load(fp(5)).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_overwrites_and_remove_clears() {
        let dir = tmp_dir("overwrite");
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(fp(9), &StopReason::Saturated, &[1]).unwrap();
        store
            .save(fp(9), &StopReason::NodeLimit, &[2, 3])
            .unwrap();
        let (reason, bytes) = store.load(fp(9)).unwrap();
        assert_eq!(reason, StopReason::NodeLimit);
        assert_eq!(bytes, vec![2, 3]);
        store.remove(fp(9)).unwrap();
        assert!(!store.contains(fp(9)));
        store.remove(fp(9)).unwrap(); // Idempotent.
        fs::remove_dir_all(&dir).unwrap();
    }
}
