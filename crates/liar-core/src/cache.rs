//! The saturation cache: a sharded, byte-budgeted LRU map from request
//! [`Fingerprint`]s to finished [`MultiReport`]s.
//!
//! Saturation dominates the cost of an optimization request by orders of
//! magnitude, and its result is a pure function of the request fingerprint
//! (see [`crate::fingerprint`]). The cache therefore stores whole
//! [`MultiReport`]s — including per-step statistics and timings, so a hit
//! replays the original run **bit-identically** — behind [`Arc`]s, and
//! [`Liar::optimize_multi`](crate::Liar::optimize_multi) consults it
//! transparently when one is attached via
//! [`Liar::with_cache`](crate::Liar::with_cache).
//!
//! Design:
//!
//! * **Sharded.** Entries map to one of N shards by fingerprint bits; each
//!   shard is an independent `Mutex`-protected LRU, so concurrent serve
//!   workers rarely contend on the same lock.
//! * **Byte-budgeted.** The configured capacity is split evenly across
//!   shards. Entry sizes are *estimates* ([`approx_report_bytes`]) — node
//!   tables, strings and per-step vectors are counted, allocator overhead
//!   is not — so treat the budget as a target, not a hard ceiling.
//! * **LRU per shard.** Recency is a monotone tick per shard; eviction
//!   pops the least recently used entry until the shard fits its budget.
//!   A single report larger than a whole shard is rejected outright
//!   (counted in [`CacheStats::rejected`]) rather than evicting the world.
//! * **Counters.** Hits, misses, insertions, evictions and rejections are
//!   relaxed atomics — cheap to bump from any thread and exported through
//!   the serve protocol's `stats` op.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use liar_ir::ArrayLang;

use crate::fingerprint::Fingerprint;
use crate::pipeline::MultiReport;

/// Default number of shards ([`SaturationCache::with_shards`] overrides).
pub const DEFAULT_SHARDS: usize = 8;

/// Aggregated cache counters (a point-in-time snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Reports stored (replacements count too).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Reports refused because they exceed a whole shard's budget.
    pub rejected: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Estimated bytes held right now.
    pub bytes: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (0 when no lookups happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

struct Entry {
    report: Arc<MultiReport>,
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u128, Entry>,
    /// tick → fingerprint, oldest first. Ticks are unique per shard, so
    /// this is a faithful recency order.
    recency: BTreeMap<u64, u128>,
    bytes: usize,
    next_tick: u64,
}

impl Shard {
    fn touch(&mut self, key: u128) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.recency.remove(&e.tick);
            e.tick = tick;
            self.recency.insert(tick, key);
        }
    }
}

/// The sharded LRU result cache (see the module docs).
pub struct SaturationCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    rejected: AtomicU64,
}

impl std::fmt::Debug for SaturationCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SaturationCache")
            .field("shards", &self.shards.len())
            .field("shard_budget", &self.shard_budget)
            .field("stats", &self.stats())
            .finish()
    }
}

impl SaturationCache {
    /// A cache holding roughly `byte_budget` bytes of reports across
    /// [`DEFAULT_SHARDS`] shards.
    pub fn new(byte_budget: usize) -> Self {
        Self::with_shards(byte_budget, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (`0` is clamped to 1). The
    /// byte budget is split evenly across shards.
    pub fn with_shards(byte_budget: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        SaturationCache {
            shard_budget: byte_budget / shards,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: Fingerprint) -> &Mutex<Shard> {
        // High bits: the low bits already picked the slot inside the
        // shard's HashMap.
        let i = (fp.0 >> 64) as u64 as usize % self.shards.len();
        &self.shards[i]
    }

    /// Look up a finished report, bumping its recency on a hit.
    pub fn get(&self, fp: Fingerprint) -> Option<Arc<MultiReport>> {
        let mut shard = self.shard(fp).lock().unwrap();
        match shard.map.get(&fp.0).map(|e| Arc::clone(&e.report)) {
            Some(report) => {
                shard.touch(fp.0);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a finished report. Returns `false` when the report alone
    /// exceeds a whole shard's budget and was rejected.
    pub fn insert(&self, fp: Fingerprint, report: Arc<MultiReport>) -> bool {
        let bytes = approx_report_bytes(&report);
        if bytes > self.shard_budget {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut shard = self.shard(fp).lock().unwrap();
        let tick = shard.next_tick;
        shard.next_tick += 1;
        if let Some(old) = shard.map.remove(&fp.0) {
            shard.recency.remove(&old.tick);
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        shard.map.insert(fp.0, Entry { report, bytes, tick });
        shard.recency.insert(tick, fp.0);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while shard.bytes > self.shard_budget {
            let (&oldest_tick, &victim) =
                shard.recency.iter().next().expect("bytes > 0 implies entries");
            shard.recency.remove(&oldest_tick);
            let evicted = shard.map.remove(&victim).expect("recency and map agree");
            shard.bytes -= evicted.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Whether a fingerprint currently has a live entry (no counter or
    /// recency side effects — for tests and introspection).
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.shard(fp).lock().unwrap().map.contains_key(&fp.0)
    }

    /// A point-in-time snapshot of the counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            entries += shard.map.len();
            bytes += shard.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

/// Estimated heap footprint of an expression (node table plus per-node
/// heap payloads).
fn approx_expr_bytes(expr: &liar_ir::Expr) -> usize {
    let mut bytes = expr.len() * std::mem::size_of::<ArrayLang>();
    for node in expr.nodes() {
        match node {
            ArrayLang::Sym(s) => bytes += s.capacity(),
            ArrayLang::Call(_, args) => {
                bytes += args.len() * std::mem::size_of::<liar_egraph::Id>()
            }
            _ => {}
        }
    }
    bytes
}

/// Estimated bytes a [`MultiReport`] occupies (see the module docs for
/// what the estimate covers).
pub fn approx_report_bytes(report: &MultiReport) -> usize {
    use std::mem::size_of;
    let mut bytes = size_of::<MultiReport>();
    bytes += report.targets.capacity() * size_of::<crate::Target>();
    bytes += report.discount_scales.capacity() * size_of::<f64>();
    bytes += report.steps.capacity() * size_of::<crate::SaturationStep>();
    for s in &report.solutions {
        bytes += size_of::<crate::MultiSolution>();
        bytes += approx_expr_bytes(&s.best);
        bytes += approx_expr_bytes(&s.dag_best);
        for name in s.lib_calls.keys() {
            // BTreeMap node overhead is ignored; key string + counter.
            bytes += name.capacity() + size_of::<usize>() + size_of::<String>();
        }
        if let Some(proof) = &s.proof {
            // Proofs dominate explained reports: every step stores two
            // full terms plus its rule name and position.
            bytes += approx_expr_bytes(&proof.source) + approx_expr_bytes(&proof.target);
            for step in &proof.steps {
                bytes += size_of::<liar_egraph::ProofStep<ArrayLang>>();
                bytes += approx_expr_bytes(&step.before) + approx_expr_bytes(&step.after);
                bytes += step.rule.capacity();
                bytes += step.position.capacity() * size_of::<usize>();
            }
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Liar, Target};
    use liar_ir::dsl;

    fn report_for(n: usize) -> (Fingerprint, Arc<MultiReport>) {
        let expr = dsl::vsum(n, dsl::sym("xs"));
        let liar = Liar::new(Target::Blas).with_iter_limit(3);
        let fp = liar.request_fingerprint(&expr, &[Target::Blas], &[1.0]);
        let report = liar.optimize_multi(&expr, &[Target::Blas], &[1.0]).unwrap();
        (fp, Arc::new(report))
    }

    #[test]
    fn get_after_insert_returns_the_same_arc() {
        let cache = SaturationCache::new(1 << 20);
        let (fp, report) = report_for(8);
        assert!(cache.insert(fp, Arc::clone(&report)));
        let hit = cache.get(fp).expect("inserted");
        assert!(Arc::ptr_eq(&hit, &report));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 0, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn miss_counts() {
        let cache = SaturationCache::new(1 << 20);
        let (fp, _) = report_for(8);
        assert!(cache.get(fp).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_oldest_under_a_tiny_budget() {
        let (fp_a, a) = report_for(8);
        let (fp_b, b) = report_for(9);
        let (fp_c, c) = report_for(10);
        let one = approx_report_bytes(&a)
            .max(approx_report_bytes(&b))
            .max(approx_report_bytes(&c));
        // One shard that fits two entries but not three.
        let cache = SaturationCache::with_shards(one * 2 + one / 2, 1);
        assert!(cache.insert(fp_a, a));
        assert!(cache.insert(fp_b, b));
        // Touch A so B becomes the LRU victim.
        assert!(cache.get(fp_a).is_some());
        assert!(cache.insert(fp_c, c));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1, "{stats:?}");
        assert!(cache.contains(fp_a), "recently used entry survived");
        assert!(!cache.contains(fp_b), "LRU entry evicted");
        assert!(cache.contains(fp_c), "new entry resident");
        assert!(stats.bytes <= one * 2 + one / 2);
    }

    #[test]
    fn oversized_reports_are_rejected_not_evicting_the_world() {
        let (fp_a, a) = report_for(8);
        // A clearly bigger report: three targets at two discount scales
        // (six solutions, each with two expressions).
        let expr = dsl::vsum(16, dsl::sym("xs"));
        let liar = Liar::new(Target::Blas).with_iter_limit(3);
        let fp_b = liar.request_fingerprint(&expr, &Target::ALL, &[1.0, 2.0]);
        let b = Arc::new(liar.optimize_multi(&expr, &Target::ALL, &[1.0, 2.0]).unwrap());
        let cache = SaturationCache::with_shards(approx_report_bytes(&a) + 1, 1);
        assert!(cache.insert(fp_a, a));
        // B is bigger than the whole shard: refused, A stays resident.
        assert!(approx_report_bytes(&b) > cache.shard_budget);
        assert!(!cache.insert(fp_b, b));
        assert!(cache.contains(fp_a));
        assert!(!cache.contains(fp_b));
        assert_eq!(cache.stats().rejected, 1);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn cached_report_is_bit_identical_to_the_cold_run() {
        use crate::CacheStatus;
        let cache = Arc::new(SaturationCache::new(1 << 22));
        let liar = Liar::new(Target::Blas)
            .with_iter_limit(4)
            .with_cache(Arc::clone(&cache));
        let expr = dsl::vsum(64, dsl::sym("xs"));
        let (cold, s1) = liar.optimize_multi_status(&expr, &Target::ALL, &[1.0]).unwrap();
        let (warm, s2) = liar.optimize_multi_status(&expr, &Target::ALL, &[1.0]).unwrap();
        assert_eq!(s1, CacheStatus::Miss);
        assert_eq!(s2, CacheStatus::Hit);
        // The whole report replays: solutions, costs, per-step stats and
        // even the original run's timings.
        assert_eq!(cold, warm);
        // A semantically identical request (different text layout, same
        // term) hits too.
        let same: crate::pipeline::MultiReport = {
            let reparsed: liar_ir::Expr = format!(" {} ", expr).parse().unwrap();
            let (r, s) = liar
                .optimize_multi_status(&reparsed, &Target::ALL, &[1.0])
                .unwrap();
            assert_eq!(s, CacheStatus::Hit);
            r
        };
        assert_eq!(cold, same);
        // Without a cache the pipeline reports Uncached and recomputes.
        let uncached = Liar::new(Target::Blas).with_iter_limit(4);
        let (_, s) = uncached
            .optimize_multi_status(&expr, &Target::ALL, &[1.0])
            .unwrap();
        assert_eq!(s, CacheStatus::Uncached);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2, "{stats:?}");
        assert_eq!(stats.insertions, 1);
    }

    #[test]
    fn replacement_does_not_leak_bytes() {
        let cache = SaturationCache::with_shards(1 << 20, 1);
        let (fp, report) = report_for(8);
        assert!(cache.insert(fp, Arc::clone(&report)));
        let bytes = cache.stats().bytes;
        assert!(cache.insert(fp, report));
        assert_eq!(cache.stats().bytes, bytes, "replacement kept one copy");
        assert_eq!(cache.stats().entries, 1);
    }
}
