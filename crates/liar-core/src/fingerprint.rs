//! Request fingerprints: the content address of one optimization request.
//!
//! A [`Fingerprint`] identifies everything that determines the *result*
//! of a [`Liar::optimize_multi`](crate::Liar::optimize_multi) call:
//!
//! * the input term's structural hash ([`liar_ir::ContentHash`] — layout
//!   and textual whitespace do not matter);
//! * the ruleset configuration ([`RuleConfig::fingerprint`]) and the
//!   ordered target list (order matters: the report lists solutions in
//!   request order, and bit-identical responses are the cache contract);
//! * the ordered discount-scale list;
//! * the ordered machine-profile list (name and all four parameters —
//!   profiles change extracted costs, so they change the result);
//! * the saturation budgets (step limit, node limit, wall-clock limit,
//!   per-rule match limit).
//!
//! Deliberately **excluded**: the worker thread count — parallel search
//! is bit-identical to serial by construction (see
//! [`liar_egraph::Runner::with_threads`]), so requests that differ only
//! in `threads` may share a cache entry. The semi-naive search knob
//! ([`crate::Liar::with_seminaive`]) is excluded for the same reason:
//! delta-frontier search emits the exact match stream the whole-graph
//! engine does, so only wall-clock timings and the `frontier_candidates`
//! work statistic can differ between a stored report and a recomputation.
//!
//! A request whose budgets include a wall-clock limit is still
//! fingerprinted (the limit is part of the key), but note that such runs
//! are only reproducible when saturation finishes within the budget;
//! the cache stores whatever the first run produced.

use std::time::Duration;

use liar_ir::{ContentAddressed, Expr, StableHasher};

use crate::profile::MachineProfile;
use crate::rules::{RuleConfig, Target};

/// Version salt mixed into every fingerprint. Bump when the semantics of
/// the pipeline change in a way that should invalidate previously
/// computed fingerprints (rule definitions, cost models, extraction).
///
/// v2: the `explain` knob joined the key (reports now optionally carry
/// proofs).
///
/// v3: the machine-profile list joined the key, and extraction's tie-break
/// among equal-cost terms became canonical (worklist extractors).
const FINGERPRINT_VERSION: u8 = 3;

/// The content address of one optimization request (see the module docs).
///
/// Displays as 32 lowercase hex digits; this is the `fingerprint` field
/// of serve-protocol responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Stable wire code of a target (independent of enum ordering).
fn target_code(t: Target) -> u8 {
    match t {
        Target::PureC => 0,
        Target::Blas => 1,
        Target::Torch => 2,
    }
}

/// The saturation budgets that participate in a fingerprint, bundled so
/// [`crate::Liar`] and the serve daemon hash exactly the same fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetKnobs {
    /// Saturation-step limit.
    pub iter_limit: usize,
    /// E-node budget.
    pub node_limit: usize,
    /// Optional wall-clock budget.
    pub time_limit: Option<Duration>,
    /// Per-rule, per-step match budget of the backoff scheduler.
    pub match_limit: usize,
    /// Whether proof production is on. Part of the key because reports
    /// computed with explanations carry proofs (and the saturation run
    /// does provenance bookkeeping), so they must not replay for
    /// proof-less requests — or vice versa.
    pub explain: bool,
}

/// Compute the fingerprint of a request (see the module docs for what is
/// and is not part of the key).
pub fn request_fingerprint(
    expr: &Expr,
    config: &RuleConfig,
    targets: &[Target],
    discount_scales: &[f64],
    profiles: &[MachineProfile],
    budgets: &BudgetKnobs,
) -> Fingerprint {
    let mut h = StableHasher::new();
    h.byte(FINGERPRINT_VERSION);
    h.u128(expr.content_hash().0);
    h.u64(config.fingerprint());
    h.u64(targets.len() as u64);
    for &t in targets {
        h.byte(target_code(t));
    }
    h.u64(discount_scales.len() as u64);
    for &s in discount_scales {
        h.u64(s.to_bits());
    }
    h.u64(profiles.len() as u64);
    for p in profiles {
        // Name *and* parameters: a renamed or re-tuned profile is a
        // different request.
        h.u64(p.name.len() as u64);
        for &b in p.name.as_bytes() {
            h.byte(b);
        }
        h.u64(p.loop_scale.to_bits());
        h.u64(p.vector_scale.to_bits());
        h.u64(p.matrix_scale.to_bits());
        h.u64(p.call_overhead.to_bits());
    }
    h.u64(budgets.iter_limit as u64);
    h.u64(budgets.node_limit as u64);
    match budgets.time_limit {
        None => h.byte(0),
        Some(d) => {
            h.byte(1);
            h.u128(d.as_nanos());
        }
    }
    h.u64(budgets.match_limit as u64);
    h.byte(budgets.explain as u8);
    Fingerprint(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knobs() -> BudgetKnobs {
        BudgetKnobs {
            iter_limit: 10,
            node_limit: 300_000,
            time_limit: None,
            match_limit: 40_000,
            explain: false,
        }
    }

    fn fp(expr: &str, targets: &[Target], scales: &[f64], budgets: &BudgetKnobs) -> Fingerprint {
        fp_profiles(expr, targets, scales, &[MachineProfile::default()], budgets)
    }

    fn fp_profiles(
        expr: &str,
        targets: &[Target],
        scales: &[f64],
        profiles: &[MachineProfile],
        budgets: &BudgetKnobs,
    ) -> Fingerprint {
        let expr: Expr = expr.parse().unwrap();
        request_fingerprint(&expr, &RuleConfig::default(), targets, scales, profiles, budgets)
    }

    #[test]
    fn semantically_identical_requests_collide() {
        let a = fp("(+ x  y)", &[Target::Blas], &[1.0], &knobs());
        let b = fp("(+ x y)", &[Target::Blas], &[1.0], &knobs());
        assert_eq!(a, b);
    }

    #[test]
    fn every_component_is_load_bearing() {
        let base = fp("(+ x y)", &[Target::Blas], &[1.0], &knobs());
        assert_ne!(base, fp("(+ y x)", &[Target::Blas], &[1.0], &knobs()));
        assert_ne!(base, fp("(+ x y)", &[Target::Torch], &[1.0], &knobs()));
        assert_ne!(
            base,
            fp("(+ x y)", &[Target::Blas, Target::Torch], &[1.0], &knobs())
        );
        assert_ne!(base, fp("(+ x y)", &[Target::Blas], &[2.0], &knobs()));
        assert_ne!(base, fp("(+ x y)", &[Target::Blas], &[1.0, 2.0], &knobs()));
        let mut b = knobs();
        b.iter_limit = 9;
        assert_ne!(base, fp("(+ x y)", &[Target::Blas], &[1.0], &b));
        let mut b = knobs();
        b.node_limit = 1000;
        assert_ne!(base, fp("(+ x y)", &[Target::Blas], &[1.0], &b));
        let mut b = knobs();
        b.time_limit = Some(Duration::from_secs(300));
        assert_ne!(base, fp("(+ x y)", &[Target::Blas], &[1.0], &b));
        let mut b = knobs();
        b.match_limit = 100;
        assert_ne!(base, fp("(+ x y)", &[Target::Blas], &[1.0], &b));
        let mut b = knobs();
        b.explain = true;
        assert_ne!(
            base,
            fp("(+ x y)", &[Target::Blas], &[1.0], &b),
            "explained requests must not share cache entries with proof-less ones"
        );
    }

    #[test]
    fn machine_profiles_are_part_of_the_key() {
        let base = fp("(+ x y)", &[Target::Blas], &[1.0], &knobs());
        let gpu = fp_profiles(
            "(+ x y)",
            &[Target::Blas],
            &[1.0],
            &[MachineProfile::gpu()],
            &knobs(),
        );
        assert_ne!(base, gpu, "a different profile is a different request");
        let both = fp_profiles(
            "(+ x y)",
            &[Target::Blas],
            &[1.0],
            &[MachineProfile::default(), MachineProfile::gpu()],
            &knobs(),
        );
        assert_ne!(base, both);
        assert_ne!(gpu, both);
        // Same name, different parameters: still a different request.
        let mut tweaked = MachineProfile::gpu();
        tweaked.call_overhead = 7.0;
        let tweaked = fp_profiles("(+ x y)", &[Target::Blas], &[1.0], &[tweaked], &knobs());
        assert_ne!(gpu, tweaked);
    }

    #[test]
    fn target_order_matters_but_config_equal_means_equal() {
        let a = fp("(+ x y)", &[Target::Blas, Target::Torch], &[1.0], &knobs());
        let b = fp("(+ x y)", &[Target::Torch, Target::Blas], &[1.0], &knobs());
        assert_ne!(a, b, "solutions come back in request order");
    }

    #[test]
    fn rule_config_changes_the_key() {
        let expr: Expr = "(+ x y)".parse().unwrap();
        let a = request_fingerprint(
            &expr,
            &RuleConfig::default(),
            &[Target::Blas],
            &[1.0],
            &[MachineProfile::default()],
            &knobs(),
        );
        let b = request_fingerprint(
            &expr,
            &RuleConfig::exhaustive(),
            &[Target::Blas],
            &[1.0],
            &[MachineProfile::default()],
            &knobs(),
        );
        assert_ne!(a, b);
    }
}
