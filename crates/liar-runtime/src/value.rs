//! Runtime values for the IR interpreter.

use std::rc::Rc;

use liar_egraph::Id;

use crate::Tensor;

/// A value produced by evaluating an IR expression.
///
/// Arrays are nested (`Arr` of `Arr` of … of `Num`), matching the IR's view
/// of arrays-of-arrays; [`Value::from`]/[`Value::to_tensor`] convert to and
/// from flat [`Tensor`]s at library-call boundaries.
#[derive(Debug, Clone)]
pub enum Value {
    /// A scalar (also used for indices).
    Num(f64),
    /// An array of values.
    Arr(Rc<Vec<Value>>),
    /// A dense tensor (or a view into one) — the representation of named
    /// inputs and library-call results, with O(1) slicing.
    Tensor(TensorView),
    /// A binary tuple.
    Tuple(Rc<(Value, Value)>),
    /// A closure: a `lam` body plus its captured environment.
    Closure(Rc<Closure>),
}

/// A view into a shared [`Tensor`]: the whole tensor, a row, a row of a
/// row, … Indexing peels one leading extent without copying.
#[derive(Debug, Clone)]
pub struct TensorView {
    base: Rc<Tensor>,
    /// Flat offset of this view's first element.
    offset: usize,
    /// How many leading extents have been peeled off.
    depth: usize,
}

impl TensorView {
    /// View of an entire tensor.
    pub fn full(t: Rc<Tensor>) -> Self {
        TensorView {
            base: t,
            offset: 0,
            depth: 0,
        }
    }

    /// The view's shape.
    pub fn shape(&self) -> &[usize] {
        &self.base.shape()[self.depth..]
    }

    /// Number of elements in the view.
    pub fn len(&self) -> usize {
        self.shape().iter().product()
    }

    /// True when the view is rank 0.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The viewed elements, flat.
    pub fn data(&self) -> &[f64] {
        &self.base.data()[self.offset..self.offset + self.len()]
    }

    /// Index the leading extent: a scalar for rank-1 views, a narrower
    /// view otherwise. `None` when out of bounds or rank 0.
    pub fn index(&self, i: usize) -> Option<Value> {
        let shape = self.shape();
        let (&n, rest) = shape.split_first()?;
        if i >= n {
            return None;
        }
        let stride: usize = rest.iter().product();
        if rest.is_empty() {
            Some(Value::Num(self.base.data()[self.offset + i]))
        } else {
            Some(Value::Tensor(TensorView {
                base: Rc::clone(&self.base),
                offset: self.offset + i * stride,
                depth: self.depth + 1,
            }))
        }
    }

    /// Leading extent (0 for rank-0 views).
    pub fn leading_len(&self) -> usize {
        self.shape().first().copied().unwrap_or(0)
    }

    /// Materialize the view as an owned tensor (O(1) for full views).
    pub fn to_tensor_rc(&self) -> Rc<Tensor> {
        if self.depth == 0 {
            Rc::clone(&self.base)
        } else {
            Rc::new(Tensor::new(self.shape().to_vec(), self.data().to_vec()))
        }
    }
}

/// A suspended `lam` body (node id into the evaluated expression) plus the
/// environment it captured.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Node id of the lambda's body within the expression being evaluated.
    pub body: Id,
    /// Captured environment (innermost binding last, i.e. `•0` = last).
    pub env: Env,
}

/// A persistent environment for De Bruijn lookups: a linked list so closure
/// capture is O(1).
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    value: Value,
    parent: Env,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Env(None)
    }

    /// Push a binding for `•0`, shifting existing bindings up.
    pub fn push(&self, value: Value) -> Env {
        Env(Some(Rc::new(EnvNode {
            value,
            parent: self.clone(),
        })))
    }

    /// Look up De Bruijn index `i`.
    pub fn get(&self, i: u32) -> Option<&Value> {
        let mut cur = self;
        for _ in 0..i {
            cur = &cur.0.as_ref()?.parent;
        }
        cur.0.as_ref().map(|n| &n.value)
    }

    /// Number of bindings (O(depth); for diagnostics).
    pub fn depth(&self) -> usize {
        let mut n = 0;
        let mut cur = self;
        while let Some(node) = &cur.0 {
            n += 1;
            cur = &node.parent;
        }
        n
    }
}

impl Value {
    /// The scalar, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Interpret a numeric value as an index.
    pub fn as_index(&self) -> Option<usize> {
        let v = self.as_num()?;
        if v < 0.0 {
            return None;
        }
        Some(v.round() as usize)
    }

    /// Like [`Value::to_tensor`] but avoids copying when the value is
    /// already a full tensor.
    pub fn to_tensor_rc(&self) -> Option<Rc<Tensor>> {
        match self {
            Value::Tensor(v) => Some(v.to_tensor_rc()),
            other => other.to_tensor().map(Rc::new),
        }
    }

    /// Flatten a (possibly nested) array value into a [`Tensor`].
    ///
    /// Fails on ragged arrays, tuples, and closures.
    pub fn to_tensor(&self) -> Option<Tensor> {
        if let Value::Tensor(v) = self {
            return Some((*v.to_tensor_rc()).clone());
        }
        fn shape_of(v: &Value) -> Option<Vec<usize>> {
            match v {
                Value::Num(_) => Some(vec![]),
                Value::Tensor(view) => Some(view.shape().to_vec()),
                Value::Arr(items) => {
                    let first = items.first().map(shape_of).unwrap_or(Some(vec![]))?;
                    let mut shape = vec![items.len()];
                    shape.extend(first);
                    Some(shape)
                }
                _ => None,
            }
        }
        fn flatten(v: &Value, out: &mut Vec<f64>) -> Option<()> {
            match v {
                Value::Num(x) => {
                    out.push(*x);
                    Some(())
                }
                Value::Tensor(view) => {
                    out.extend_from_slice(view.data());
                    Some(())
                }
                Value::Arr(items) => {
                    for item in items.iter() {
                        flatten(item, out)?;
                    }
                    Some(())
                }
                _ => None,
            }
        }
        let shape = shape_of(self)?;
        let mut data = Vec::with_capacity(shape.iter().product());
        flatten(self, &mut data)?;
        let expect: usize = shape.iter().product();
        if data.len() != expect {
            return None; // Ragged.
        }
        Some(Tensor::new(shape, data))
    }
}

impl From<Tensor> for Value {
    /// Wrap a tensor as a value (rank-0 tensors become plain numbers).
    fn from(t: Tensor) -> Value {
        if t.shape().is_empty() {
            Value::Num(t.as_scalar())
        } else {
            Value::Tensor(TensorView::full(Rc::new(t)))
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_lookup_is_de_bruijn() {
        let env = Env::new().push(Value::Num(1.0)).push(Value::Num(2.0));
        assert_eq!(env.get(0).unwrap().as_num(), Some(2.0));
        assert_eq!(env.get(1).unwrap().as_num(), Some(1.0));
        assert!(env.get(2).is_none());
        assert_eq!(env.depth(), 2);
    }

    #[test]
    fn tensor_roundtrip() {
        let t = Tensor::matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let v = Value::from(t.clone());
        assert_eq!(v.to_tensor().unwrap(), t);
        let s = Value::Num(7.0);
        assert_eq!(s.to_tensor().unwrap(), Tensor::scalar(7.0));
    }

    #[test]
    fn ragged_arrays_do_not_flatten() {
        let ragged = Value::Arr(Rc::new(vec![
            Value::Arr(Rc::new(vec![Value::Num(1.0)])),
            Value::Arr(Rc::new(vec![Value::Num(1.0), Value::Num(2.0)])),
        ]));
        assert!(ragged.to_tensor().is_none());
    }

    #[test]
    fn as_index_rejects_negatives() {
        assert_eq!(Value::Num(3.0).as_index(), Some(3));
        assert_eq!(Value::Num(-1.0).as_index(), None);
    }
}
