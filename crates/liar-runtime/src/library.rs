//! Optimized implementations of the library functions LIAR targets.
//!
//! This module is the reproduction's stand-in for OpenBLAS / libtorch (see
//! ARCHITECTURE.md, substitutions): straight-line Rust over flat `f64` slices,
//! with a cache-blocked and multithreaded `gemm` and threaded matrix–vector
//! products, so that recognized library calls genuinely outrun the
//! interpreted loop nests they replace — the same relative behaviour the
//! paper measures against reference C kernels.

use crate::Tensor;

/// Threshold (in flops) above which matrix routines spawn worker threads.
const PARALLEL_FLOPS: usize = 1 << 18;

/// Number of worker threads for the parallel paths.
fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// `dot(A, B) = Σ A[i]·B[i]`.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Unrolled into four independent accumulators for ILP.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut total = acc[0] + acc[1] + acc[2] + acc[3];
    for j in chunks * 4..a.len() {
        total += a[j] * b[j];
    }
    total
}

/// `axpy(α, A, B) = αA + B` (fused single pass).
///
/// # Panics
///
/// Panics when lengths differ.
pub fn axpy(alpha: f64, a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    a.iter().zip(b).map(|(x, y)| alpha * x + y).collect()
}

/// `memset(0)`: an all-zeros vector of length `n`.
pub fn memset_zero(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

/// `gemv(α, A, B, β, C) = α·op(A)·B + βC`.
///
/// `a` is stored row-major with the given shape; `trans` selects `Aᵀ`.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn gemv(
    alpha: f64,
    a: &Tensor,
    b: &[f64],
    beta: f64,
    c: &[f64],
    trans: bool,
) -> Vec<f64> {
    let (rows, cols) = (a.shape()[0], a.shape()[1]);
    let (out_len, inner) = if trans { (cols, rows) } else { (rows, cols) };
    assert_eq!(b.len(), inner, "gemv: B length mismatch");
    assert_eq!(c.len(), out_len, "gemv: C length mismatch");
    let data = a.data();
    if !trans {
        let row_dot = |i: usize| alpha * dot(&data[i * cols..(i + 1) * cols], b) + beta * c[i];
        if rows * cols >= PARALLEL_FLOPS {
            parallel_map(out_len, row_dot)
        } else {
            (0..out_len).map(row_dot).collect()
        }
    } else {
        // Aᵀ·B: accumulate column-wise to stay cache-friendly.
        let mut out: Vec<f64> = c.iter().map(|&x| beta * x).collect();
        for (i, &bi) in b.iter().enumerate() {
            let row = &data[i * cols..(i + 1) * cols];
            let s = alpha * bi;
            for (o, &x) in out.iter_mut().zip(row) {
                *o += s * x;
            }
        }
        out
    }
}

/// `transpose(A)` for a rank-2 tensor.
///
/// # Panics
///
/// Panics unless `a` is rank 2.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "transpose: rank-2 input required");
    let (rows, cols) = (a.shape()[0], a.shape()[1]);
    let data = a.data();
    let mut out = vec![0.0; rows * cols];
    // Blocked transpose for cache friendliness.
    const B: usize = 32;
    for ib in (0..rows).step_by(B) {
        for jb in (0..cols).step_by(B) {
            for i in ib..(ib + B).min(rows) {
                for j in jb..(jb + B).min(cols) {
                    out[j * rows + i] = data[i * cols + j];
                }
            }
        }
    }
    Tensor::matrix(cols, rows, out)
}

fn parallel_map(n: usize, f: impl Fn(usize) -> f64 + Sync) -> Vec<f64> {
    let workers = workers().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out = vec![0.0; n];
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slot) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (k, o) in slot.iter_mut().enumerate() {
                    *o = f(w * chunk + k);
                }
            });
        }
    });
    out
}

/// `gemm(α, A, B, β, C) = α·opA(A)·opB(B) + βC`, where a `true` flag means
/// the corresponding matrix participates transposed (BLAS convention, and
/// the paper's `gemmX,Y` notation: `gemmFT(A, B) = A·Bᵀ`).
///
/// With flags `(false, false)`, `A` is n×k and `B` is k×m; each `true`
/// flag swaps the corresponding stored orientation.
///
/// Multithreaded over row bands; the inner kernel works on rows of `A`
/// dotted with rows of `Bᵀ` for locality.
///
/// # Panics
///
/// Panics on dimension mismatches.
pub fn gemm(
    alpha: f64,
    a: &Tensor,
    b: &Tensor,
    beta: f64,
    c: &Tensor,
    trans_a: bool,
    trans_b: bool,
) -> Tensor {
    // Normalize so rows(a) are the left vectors (n×k) and rows(b) the
    // right vectors (m×k): op(B) is k×m, so its row-form is op(B)ᵀ —
    // the stored B itself when the flag is set.
    let a = if trans_a { transpose(a) } else { a.clone() };
    let b = if trans_b { b.clone() } else { transpose(b) };
    let (n, k) = (a.shape()[0], a.shape()[1]);
    let (m, kb) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, kb, "gemm: inner dimensions differ");
    assert_eq!(c.shape(), &[n, m], "gemm: C shape mismatch");

    let (ad, bd, cd) = (a.data(), b.data(), c.data());
    let mut out = vec![0.0; n * m];
    let compute_band = |rows: std::ops::Range<usize>, out_band: &mut [f64]| {
        let base = rows.start;
        for i in rows {
            let arow = &ad[i * k..(i + 1) * k];
            let orow = &mut out_band[(i - base) * m..(i - base + 1) * m];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                *o = alpha * dot(arow, brow) + beta * cd[i * m + j];
            }
        }
    };
    if 2 * n * m * k >= PARALLEL_FLOPS && workers() > 1 {
        let band = n.div_ceil(workers());
        std::thread::scope(|scope| {
            for (w, out_band) in out.chunks_mut(band * m).enumerate() {
                let lo = w * band;
                let hi = (lo + band).min(n);
                let compute_band = &compute_band;
                scope.spawn(move || compute_band(lo..hi, out_band));
            }
        });
    } else {
        compute_band(0..n, &mut out);
    }
    Tensor::matrix(n, m, out)
}

/// PyTorch `mv(A, B) = A·B`.
pub fn mv(a: &Tensor, b: &[f64]) -> Vec<f64> {
    gemv(1.0, a, b, 0.0, &vec![0.0; a.shape()[0]], false)
}

/// PyTorch `mm(A, B) = A·Bᵀ` (the paper's I-MATMAT orientation).
pub fn mm(a: &Tensor, b: &Tensor) -> Tensor {
    let n = a.shape()[0];
    let m = b.shape()[0];
    gemm(1.0, a, b, 0.0, &Tensor::zeros(vec![n, m]), false, true)
}

/// PyTorch elementwise `add` over equally-shaped tensors.
///
/// # Panics
///
/// Panics when shapes differ.
pub fn tadd(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    let data = a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect();
    Tensor::new(a.shape().to_vec(), data)
}

/// PyTorch elementwise scalar multiply.
pub fn tmul(alpha: f64, a: &Tensor) -> Tensor {
    let data = a.data().iter().map(|x| alpha * x).collect();
    Tensor::new(a.shape().to_vec(), data)
}

/// PyTorch `sum` over all elements.
pub fn tsum(a: &Tensor) -> f64 {
    let mut acc = [0.0f64; 4];
    let d = a.data();
    let chunks = d.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += d[j];
        acc[1] += d[j + 1];
        acc[2] += d[j + 2];
        acc[3] += d[j + 3];
    }
    acc.iter().sum::<f64>() + d[chunks * 4..].iter().sum::<f64>()
}

/// PyTorch `full`: `n` copies of `c`.
pub fn tfull(n: usize, c: f64) -> Vec<f64> {
    vec![c; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(r: usize, c: usize, d: Vec<f64>) -> Tensor {
        Tensor::matrix(r, c, d)
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..17).map(|i| (i * 2) as f64).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b), naive);
    }

    #[test]
    fn axpy_fused() {
        assert_eq!(axpy(2.0, &[1.0, 2.0], &[10.0, 20.0]), vec![12.0, 24.0]);
    }

    #[test]
    fn gemv_no_trans() {
        // A = [[1,2],[3,4]], B = [1,1], C = [10, 20]: 2·A·B + 1·C.
        let a = t(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let out = gemv(2.0, &a, &[1.0, 1.0], 1.0, &[10.0, 20.0], false);
        assert_eq!(out, vec![2.0 * 3.0 + 10.0, 2.0 * 7.0 + 20.0]);
    }

    #[test]
    fn gemv_trans_matches_explicit_transpose() {
        let a = t(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = [1.0, -1.0];
        let c = [0.5, 0.5, 0.5];
        let via_flag = gemv(2.0, &a, &b, 3.0, &c, true);
        let via_transpose = gemv(2.0, &transpose(&a), &b, 3.0, &c, false);
        assert_eq!(via_flag, via_transpose);
    }

    #[test]
    fn transpose_blocked_matches_naive() {
        let a = t(3, 5, (0..15).map(|i| i as f64).collect());
        let tt = transpose(&a);
        assert_eq!(tt.shape(), &[5, 3]);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(tt.data()[j * 3 + i], a.data()[i * 5 + j]);
            }
        }
    }

    #[test]
    fn gemm_ff_is_plain_product() {
        // A 2×3, B 3×2: A·B is 2×2.
        let a = t(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]);
        let c = Tensor::zeros(vec![2, 2]);
        let out = gemm(1.0, &a, &b, 0.0, &c, false, false);
        assert_eq!(out.data(), &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn gemm_ft_is_a_bt() {
        // gemmFT(A, B) = A·Bᵀ with A 2×3, B 2×3.
        let a = t(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let c = Tensor::zeros(vec![2, 2]);
        let out = gemm(1.0, &a, &b, 0.0, &c, false, true);
        assert_eq!(out.data(), &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn gemm_flags_compose_with_transpose() {
        let a = t(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 4, (0..12).map(|i| i as f64).collect());
        let c = Tensor::zeros(vec![2, 4]);
        // trans_a: Aᵀ·B (2×4) equals explicitly transposing A first.
        let flagged = gemm(1.0, &a, &b, 0.0, &c, true, false);
        let explicit = gemm(1.0, &transpose(&a), &b, 0.0, &c, false, false);
        assert!(flagged.approx_eq(&explicit, 1e-12));
        // trans_b: A'·Bᵀ equals explicitly transposing B first.
        let a2 = t(2, 4, (0..8).map(|i| i as f64).collect());
        let b2 = t(3, 4, (0..12).map(|i| (i % 5) as f64).collect());
        let c2 = Tensor::zeros(vec![2, 3]);
        let flagged = gemm(1.0, &a2, &b2, 0.0, &c2, false, true);
        let explicit = gemm(1.0, &a2, &transpose(&b2), 0.0, &c2, false, false);
        assert!(flagged.approx_eq(&explicit, 1e-12));
    }

    #[test]
    fn gemm_parallel_matches_serial() {
        // Big enough to cross the parallel threshold. FT orientation so
        // rows dot rows.
        let n = 80;
        let a = Tensor::matrix(n, n, (0..n * n).map(|i| (i % 13) as f64).collect());
        let b = Tensor::matrix(n, n, (0..n * n).map(|i| (i % 7) as f64).collect());
        let c = Tensor::zeros(vec![n, n]);
        let big = gemm(1.0, &a, &b, 0.0, &c, false, true);
        // Verify a handful of entries against naive dot products.
        for &(i, j) in &[(0, 0), (3, 7), (79, 79), (40, 1)] {
            let arow = &a.data()[i * n..(i + 1) * n];
            let brow = &b.data()[j * n..(j + 1) * n];
            let expect: f64 = arow.iter().zip(brow).map(|(x, y)| x * y).sum();
            assert_eq!(big.data()[i * n + j], expect);
        }
    }

    #[test]
    fn mv_mm_sum_full() {
        let a = t(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mv(&a, &[1.0, 0.0]), vec![1.0, 3.0]);
        let prod = mm(&a, &a); // A·Aᵀ
        assert_eq!(prod.data(), &[5.0, 11.0, 11.0, 25.0]);
        let b = t(2, 2, vec![1.0, 0.0, 0.0, 0.0]);
        // mm(A, B) = A·Bᵀ.
        assert_eq!(mm(&a, &b).data(), &[1.0, 0.0, 3.0, 0.0]);
        assert_eq!(tsum(&a), 10.0);
        assert_eq!(tfull(3, 0.5), vec![0.5; 3]);
        assert_eq!(tadd(&a, &a).data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(tmul(2.0, &a).data(), &[2.0, 4.0, 6.0, 8.0]);
    }
}
