//! Execution substrate for LIAR solutions.
//!
//! The paper compiles extracted expressions to C (linking BLAS solutions
//! against OpenBLAS) and measures run times. This crate substitutes an
//! in-process equivalent (see ARCHITECTURE.md):
//!
//! * [`eval()`] — an environment-based interpreter for the minimalist IR.
//!   It plays the role of the paper's compiled loop nests for "pure C"
//!   solutions.
//! * [`library`] — optimized Rust implementations of the BLAS and PyTorch
//!   functions LIAR can target (cache-blocked, multithreaded `gemm`;
//!   threaded `gemv`/`mv`; fused `axpy`; …), playing the role of OpenBLAS.
//! * [`exec`] — runs a solution end to end, timing the fraction of work
//!   done inside library calls (the paper's *coverage* metric, fig. 5).
//!
//! ```
//! use liar_ir::dsl;
//! use liar_runtime::{exec, Tensor, Value};
//!
//! let vsum = dsl::vsum(4, dsl::sym("xs"));
//! let inputs = [("xs".to_string(), Value::from(Tensor::vector(vec![1.0, 2.0, 3.0, 4.0])))]
//!     .into_iter()
//!     .collect();
//! let (result, _stats) = exec::run(&vsum, &inputs).unwrap();
//! assert_eq!(result.as_num().unwrap(), 10.0);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod eval;
pub mod exec;
pub mod library;
mod tensor;
mod value;

pub use eval::{eval, EvalError};
pub use exec::{run, ExecStats};
pub use tensor::Tensor;
pub use value::{TensorView, Value};
