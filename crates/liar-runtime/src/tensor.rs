//! A dense row-major tensor of `f64`s.

/// A dense row-major tensor (scalar, vector, matrix, or higher rank).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Build a tensor from a shape and row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not the product of `shape`.
    pub fn new(shape: Vec<usize>, data: Vec<f64>) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(data.len(), expect, "shape/data mismatch");
        Tensor { shape, data }
    }

    /// A rank-0 tensor (scalar).
    pub fn scalar(v: f64) -> Self {
        Tensor {
            shape: vec![],
            data: vec![v],
        }
    }

    /// A rank-1 tensor.
    pub fn vector(data: Vec<f64>) -> Self {
        Tensor {
            shape: vec![data.len()],
            data,
        }
    }

    /// A rank-2 tensor from row-major data.
    pub fn matrix(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        Tensor::new(vec![rows, cols], data)
    }

    /// An all-zeros tensor.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for an empty tensor.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Scalar value of a rank-0 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 0.
    pub fn as_scalar(&self) -> f64 {
        assert!(self.shape.is_empty(), "not a scalar: shape {:?}", self.shape);
        self.data[0]
    }

    /// The `i`th slice along the first axis (a row for matrices).
    ///
    /// # Panics
    ///
    /// Panics on rank 0 or out-of-bounds `i`.
    pub fn slice(&self, i: usize) -> Tensor {
        assert!(!self.shape.is_empty(), "cannot slice a scalar");
        let stride: usize = self.shape[1..].iter().product();
        let start = i * stride;
        Tensor {
            shape: self.shape[1..].to_vec(),
            data: self.data[start..start + stride].to_vec(),
        }
    }

    /// Maximum absolute elementwise difference against another tensor.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f64 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when all elements are within `tol` of `other`'s, with the same
    /// shape.
    pub fn approx_eq(&self, other: &Tensor, tol: f64) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.slice(1).data(), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn bad_shape_panics() {
        let _ = Tensor::new(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Tensor::vector(vec![1.0, 2.0]);
        let b = Tensor::vector(vec![1.0 + 1e-12, 2.0]);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c = Tensor::vector(vec![1.0, 2.0, 3.0]);
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn scalar_roundtrip() {
        assert_eq!(Tensor::scalar(4.5).as_scalar(), 4.5);
    }

    #[test]
    fn zeros() {
        let z = Tensor::zeros(vec![2, 2]);
        assert_eq!(z.data(), &[0.0; 4]);
    }
}
