//! An environment-based interpreter for the minimalist IR.
//!
//! Library calls dispatch to the optimized routines in [`crate::library`]
//! and are individually timed so callers can compute *coverage* — the
//! fraction of run time spent inside library functions (paper fig. 5).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::time::{Duration, Instant};

use liar_egraph::{Id, Language};
use liar_ir::{ArrayLang, Expr, LibFn};

use crate::library;
use crate::value::{Closure, Env, Value};
use crate::Tensor;

/// Errors produced by evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A named input was not supplied.
    MissingInput(String),
    /// A De Bruijn index had no binding.
    UnboundVariable(u32),
    /// A non-function was applied.
    NotAFunction,
    /// A non-array was indexed or passed where an array was needed.
    NotAnArray,
    /// A non-number was used as a scalar or index.
    NotANumber,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The requested index.
        index: usize,
        /// The array length.
        len: usize,
    },
    /// A tuple projection on a non-tuple.
    NotATuple,
    /// A malformed library call (wrong shapes, non-tensor argument, …).
    BadCall(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::MissingInput(name) => write!(f, "missing input {name}"),
            EvalError::UnboundVariable(i) => write!(f, "unbound parameter %{i}"),
            EvalError::NotAFunction => write!(f, "applied a non-function"),
            EvalError::NotAnArray => write!(f, "indexed a non-array"),
            EvalError::NotANumber => write!(f, "expected a number"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            EvalError::NotATuple => write!(f, "projected a non-tuple"),
            EvalError::BadCall(msg) => write!(f, "bad library call: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Per-evaluation statistics: time spent in each library function.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Cumulative time per library function (by family name).
    pub lib_time: BTreeMap<&'static str, Duration>,
    /// Number of library calls executed.
    pub lib_calls: usize,
}

impl EvalStats {
    /// Total time spent inside library functions.
    pub fn total_lib_time(&self) -> Duration {
        self.lib_time.values().sum()
    }
}

struct Interp<'a> {
    expr: &'a Expr,
    inputs: &'a HashMap<String, Value>,
    stats: RefCell<EvalStats>,
    /// Merkle hash per node (structural, so textually duplicated subtrees
    /// share an entry) — `None` for nodes with free variables.
    closed_hash: Vec<Option<u128>>,
    /// Cache of already-evaluated closed subtrees. Mirrors what the
    /// paper's C backend achieves by materializing temporaries once: a
    /// shared subexpression (e.g. gemver's A2 matrix) is computed once,
    /// not once per enclosing loop iteration.
    memo: RefCell<HashMap<u128, Value>>,
}

/// Compute per-node (closedness, merkle hash) for memoization.
fn closed_hashes(expr: &Expr) -> Vec<Option<u128>> {
    use std::hash::{Hash, Hasher};
    fn mix(h: u128, x: u128) -> u128 {
        // SplitMix-style mixing, widened.
        let mut z = h ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15_f39c_c060_5ced_c835);
        z ^= z >> 67;
        z = z.wrapping_mul(0xff51_afd7_ed55_8ccd_c4ce_b9fe_1a85_ec53);
        z ^ (z >> 59)
    }
    let mut free: Vec<liar_ir::VarSet> = Vec::with_capacity(expr.len());
    let mut hashes: Vec<u128> = Vec::with_capacity(expr.len());
    let mut out: Vec<Option<u128>> = Vec::with_capacity(expr.len());
    for node in expr.nodes() {
        let f = liar_ir::debruijn::node_free_vars(node, &mut |c| free[c.index()]);
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::mem::discriminant(node).hash(&mut hasher);
        match node {
            ArrayLang::Dim(n) => n.hash(&mut hasher),
            ArrayLang::Const(c) => c.hash(&mut hasher),
            ArrayLang::Sym(s) => s.hash(&mut hasher),
            ArrayLang::Var(i) => i.hash(&mut hasher),
            ArrayLang::Call(f, _) => f.hash(&mut hasher),
            _ => {}
        }
        let mut h = (hasher.finish() as u128) << 64 | hasher.finish() as u128;
        for (k, c) in node.children().iter().enumerate() {
            h = mix(h, hashes[c.index()].wrapping_add(k as u128 + 1));
        }
        hashes.push(h);
        out.push(if f.is_empty() { Some(h) } else { None });
        free.push(f);
    }
    out
}

/// Evaluate an expression given named inputs.
///
/// # Errors
///
/// Returns an [`EvalError`] on missing inputs, type confusion, or malformed
/// library calls.
pub fn eval(expr: &Expr, inputs: &HashMap<String, Value>) -> Result<Value, EvalError> {
    eval_with_stats(expr, inputs).map(|(v, _)| v)
}

/// Evaluate and report per-library-call timing.
///
/// # Errors
///
/// See [`eval`].
pub fn eval_with_stats(
    expr: &Expr,
    inputs: &HashMap<String, Value>,
) -> Result<(Value, EvalStats), EvalError> {
    let interp = Interp {
        expr,
        inputs,
        stats: RefCell::new(EvalStats::default()),
        closed_hash: closed_hashes(expr),
        memo: RefCell::new(HashMap::new()),
    };
    let value = interp.eval(expr.root(), &Env::new())?;
    Ok((value, interp.stats.into_inner()))
}

impl Interp<'_> {
    fn eval(&self, id: Id, env: &Env) -> Result<Value, EvalError> {
        // Closed non-leaf subtrees are evaluated once and shared.
        let key = match self.expr.node(id) {
            n if n.is_leaf() => None,
            ArrayLang::Lam(_) => None, // Closures are cheap; env capture differs.
            _ => self.closed_hash[id.index()],
        };
        if let Some(k) = key {
            if let Some(v) = self.memo.borrow().get(&k) {
                return Ok(v.clone());
            }
        }
        let value = self.eval_uncached(id, env)?;
        if let Some(k) = key {
            self.memo.borrow_mut().insert(k, value.clone());
        }
        Ok(value)
    }

    fn eval_uncached(&self, id: Id, env: &Env) -> Result<Value, EvalError> {
        match self.expr.node(id) {
            ArrayLang::Dim(n) => Ok(Value::Num(*n as f64)),
            ArrayLang::Const(c) => Ok(Value::Num(c.get())),
            ArrayLang::Sym(name) => self
                .inputs
                .get(name)
                .cloned()
                .ok_or_else(|| EvalError::MissingInput(name.clone())),
            ArrayLang::Var(i) => env
                .get(*i)
                .cloned()
                .ok_or(EvalError::UnboundVariable(*i)),
            ArrayLang::Lam(body) => Ok(Value::Closure(Rc::new(Closure {
                body: *body,
                env: env.clone(),
            }))),
            ArrayLang::App([f, x]) => {
                let f = self.eval(*f, env)?;
                let x = self.eval(*x, env)?;
                self.apply(&f, x)
            }
            ArrayLang::Build([n, f]) => {
                let n = self.index(*n, env)?;
                let f = self.eval(*f, env)?;
                let mut items = Vec::with_capacity(n);
                for i in 0..n {
                    items.push(self.apply(&f, Value::Num(i as f64))?);
                }
                Ok(Value::Arr(Rc::new(items)))
            }
            ArrayLang::Get([a, i]) => {
                let arr = self.eval(*a, env)?;
                let idx = self.index(*i, env)?;
                match &arr {
                    Value::Arr(items) => {
                        items
                            .get(idx)
                            .cloned()
                            .ok_or(EvalError::IndexOutOfBounds {
                                index: idx,
                                len: items.len(),
                            })
                    }
                    Value::Tensor(view) => {
                        view.index(idx).ok_or(EvalError::IndexOutOfBounds {
                            index: idx,
                            len: view.leading_len(),
                        })
                    }
                    _ => Err(EvalError::NotAnArray),
                }
            }
            ArrayLang::IFold([n, init, f]) => {
                let n = self.index(*n, env)?;
                let f = self.eval(*f, env)?;
                let mut acc = self.eval(*init, env)?;
                for i in 0..n {
                    let step = self.apply(&f, Value::Num(i as f64))?;
                    acc = self.apply(&step, acc)?;
                }
                Ok(acc)
            }
            ArrayLang::Tuple([a, b]) => {
                let a = self.eval(*a, env)?;
                let b = self.eval(*b, env)?;
                Ok(Value::Tuple(Rc::new((a, b))))
            }
            ArrayLang::Fst(t) => match self.eval(*t, env)? {
                Value::Tuple(p) => Ok(p.0.clone()),
                _ => Err(EvalError::NotATuple),
            },
            ArrayLang::Snd(t) => match self.eval(*t, env)? {
                Value::Tuple(p) => Ok(p.1.clone()),
                _ => Err(EvalError::NotATuple),
            },
            ArrayLang::Add(ab) => self.binop(ab, env, |a, b| a + b),
            ArrayLang::Sub(ab) => self.binop(ab, env, |a, b| a - b),
            ArrayLang::Mul(ab) => self.binop(ab, env, |a, b| a * b),
            ArrayLang::Div(ab) => self.binop(ab, env, |a, b| a / b),
            ArrayLang::Gt(ab) => self.binop(ab, env, |a, b| f64::from(a > b)),
            ArrayLang::Call(f, args) => self.call(*f, args, env),
        }
    }

    fn apply(&self, f: &Value, x: Value) -> Result<Value, EvalError> {
        match f {
            Value::Closure(c) => self.eval(c.body, &c.env.push(x)),
            _ => Err(EvalError::NotAFunction),
        }
    }

    fn num(&self, id: Id, env: &Env) -> Result<f64, EvalError> {
        self.eval(id, env)?.as_num().ok_or(EvalError::NotANumber)
    }

    fn index(&self, id: Id, env: &Env) -> Result<usize, EvalError> {
        self.eval(id, env)?.as_index().ok_or(EvalError::NotANumber)
    }

    fn binop(
        &self,
        [a, b]: &[Id; 2],
        env: &Env,
        op: impl Fn(f64, f64) -> f64,
    ) -> Result<Value, EvalError> {
        Ok(Value::Num(op(self.num(*a, env)?, self.num(*b, env)?)))
    }

    fn tensor(&self, id: Id, env: &Env) -> Result<Rc<Tensor>, EvalError> {
        self.eval(id, env)?
            .to_tensor_rc()
            .ok_or_else(|| EvalError::BadCall("argument is not a tensor".into()))
    }

    fn call(&self, f: LibFn, args: &[Id], env: &Env) -> Result<Value, EvalError> {
        // Evaluate value arguments (skipping the leading dims, which are
        // implied by the tensors themselves).
        let vals = &args[f.n_dims()..];
        let dim0 = self.index(args[0], env)?;
        let start = Instant::now();
        let result: Value = match f {
            LibFn::Dot => {
                let (a, b) = (self.tensor(vals[0], env)?, self.tensor(vals[1], env)?);
                let start = Instant::now();
                let r = library::dot(a.data(), b.data());
                self.record(f, start);
                Value::Num(r)
            }
            LibFn::Axpy => {
                let alpha = self.num(vals[0], env)?;
                let (a, b) = (self.tensor(vals[1], env)?, self.tensor(vals[2], env)?);
                let start = Instant::now();
                let r = library::axpy(alpha, a.data(), b.data());
                self.record(f, start);
                Value::from(Tensor::vector(r))
            }
            LibFn::Gemv { trans } => {
                let alpha = self.num(vals[0], env)?;
                let a = self.tensor(vals[1], env)?;
                let b = self.tensor(vals[2], env)?;
                let beta = self.num(vals[3], env)?;
                let c = self.tensor(vals[4], env)?;
                if a.shape().len() != 2 {
                    return Err(EvalError::BadCall("gemv: A must be rank 2".into()));
                }
                let start = Instant::now();
                let r = library::gemv(alpha, &a, b.data(), beta, c.data(), trans);
                self.record(f, start);
                Value::from(Tensor::vector(r))
            }
            LibFn::Gemm { trans_a, trans_b } => {
                let alpha = self.num(vals[0], env)?;
                let a = self.tensor(vals[1], env)?;
                let b = self.tensor(vals[2], env)?;
                let beta = self.num(vals[3], env)?;
                let c = self.tensor(vals[4], env)?;
                if a.shape().len() != 2 || b.shape().len() != 2 {
                    return Err(EvalError::BadCall("gemm: rank-2 inputs required".into()));
                }
                let start = Instant::now();
                let r = library::gemm(alpha, &a, &b, beta, &c, trans_a, trans_b);
                self.record(f, start);
                Value::from(r)
            }
            LibFn::Memset => {
                let start = Instant::now();
                let r = library::memset_zero(dim0);
                self.record(f, start);
                Value::from(Tensor::vector(r))
            }
            LibFn::Transpose => {
                let a = self.tensor(vals[0], env)?;
                if a.shape().len() != 2 {
                    return Err(EvalError::BadCall("transpose: rank-2 input".into()));
                }
                let start = Instant::now();
                let r = library::transpose(&a);
                self.record(f, start);
                Value::from(r)
            }
            LibFn::TAdd => {
                let (a, b) = (self.tensor(vals[0], env)?, self.tensor(vals[1], env)?);
                if a.shape() != b.shape() {
                    return Err(EvalError::BadCall("add: shape mismatch".into()));
                }
                let start = Instant::now();
                let r = library::tadd(&a, &b);
                self.record(f, start);
                Value::from(r)
            }
            LibFn::TMul => {
                let alpha = self.num(vals[0], env)?;
                let a = self.tensor(vals[1], env)?;
                let start = Instant::now();
                let r = library::tmul(alpha, &a);
                self.record(f, start);
                Value::from(r)
            }
            LibFn::TMv => {
                let (a, b) = (self.tensor(vals[0], env)?, self.tensor(vals[1], env)?);
                if a.shape().len() != 2 {
                    return Err(EvalError::BadCall("mv: A must be rank 2".into()));
                }
                let start = Instant::now();
                let r = library::mv(&a, b.data());
                self.record(f, start);
                Value::from(Tensor::vector(r))
            }
            LibFn::TMm => {
                let (a, b) = (self.tensor(vals[0], env)?, self.tensor(vals[1], env)?);
                if a.shape().len() != 2 || b.shape().len() != 2 {
                    return Err(EvalError::BadCall("mm: rank-2 inputs required".into()));
                }
                let start = Instant::now();
                let r = library::mm(&a, &b);
                self.record(f, start);
                Value::from(r)
            }
            LibFn::TSum => {
                let a = self.tensor(vals[0], env)?;
                let start = Instant::now();
                let r = library::tsum(&a);
                self.record(f, start);
                Value::Num(r)
            }
            LibFn::TFull => {
                let c = self.num(vals[0], env)?;
                let start = Instant::now();
                let r = library::tfull(dim0, c);
                self.record(f, start);
                Value::from(Tensor::vector(r))
            }
        };
        let _ = start;
        Ok(result)
    }

    fn record(&self, f: LibFn, start: Instant) {
        let mut stats = self.stats.borrow_mut();
        *stats
            .lib_time
            .entry(f.family_name())
            .or_insert(Duration::ZERO) += start.elapsed();
        stats.lib_calls += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_ir::dsl;

    fn inputs(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn vec_val(data: &[f64]) -> Value {
        Value::from(Tensor::vector(data.to_vec()))
    }

    fn ev(s: &str, ins: &HashMap<String, Value>) -> Result<Value, EvalError> {
        eval(&s.parse().unwrap(), ins)
    }

    #[test]
    fn scalar_arithmetic() {
        let ins = inputs(&[]);
        assert_eq!(ev("(+ 1 (* 2 3))", &ins).unwrap().as_num(), Some(7.0));
        assert_eq!(ev("(- 1 (/ 4 2))", &ins).unwrap().as_num(), Some(-1.0));
        assert_eq!(ev("(> 2 1)", &ins).unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn build_and_get() {
        let ins = inputs(&[]);
        let v = ev("(build #4 (lam (* %0 %0)))", &ins).unwrap();
        let t = v.to_tensor().unwrap();
        assert_eq!(t.data(), &[0.0, 1.0, 4.0, 9.0]);
        assert_eq!(
            ev("(get (build #4 (lam (* %0 %0))) 3)", &ins).unwrap().as_num(),
            Some(9.0)
        );
    }

    #[test]
    fn ifold_follows_recursive_definition() {
        // ifold 3 10 (λ i (λ acc. acc + i)) = 10 + 0 + 1 + 2.
        let ins = inputs(&[]);
        let v = ev("(ifold #3 10 (lam (lam (+ %0 %1))))", &ins).unwrap();
        assert_eq!(v.as_num(), Some(13.0));
    }

    #[test]
    fn vsum_matches_sum(){
        let xs = vec_val(&[1.0, 2.0, 3.0, 4.5]);
        let ins = inputs(&[("xs", xs)]);
        let expr = dsl::vsum(4, dsl::sym("xs"));
        assert_eq!(eval(&expr, &ins).unwrap().as_num(), Some(10.5));
    }

    #[test]
    fn beta_reduction_semantics() {
        let ins = inputs(&[]);
        assert_eq!(
            ev("(app (lam (+ %0 1)) 41)", &ins).unwrap().as_num(),
            Some(42.0)
        );
    }

    #[test]
    fn tuples() {
        let ins = inputs(&[]);
        assert_eq!(ev("(fst (tuple 1 2))", &ins).unwrap().as_num(), Some(1.0));
        assert_eq!(ev("(snd (tuple 1 2))", &ins).unwrap().as_num(), Some(2.0));
        assert_eq!(ev("(fst 3)", &ins).unwrap_err(), EvalError::NotATuple);
    }

    #[test]
    fn errors() {
        let ins = inputs(&[]);
        assert_eq!(
            ev("missing", &ins).unwrap_err(),
            EvalError::MissingInput("missing".into())
        );
        assert_eq!(ev("%0", &ins).unwrap_err(), EvalError::UnboundVariable(0));
        assert_eq!(ev("(app 1 2)", &ins).unwrap_err(), EvalError::NotAFunction);
        assert_eq!(
            ev("(get (build #2 (lam %0)) 5)", &ins).unwrap_err(),
            EvalError::IndexOutOfBounds { index: 5, len: 2 }
        );
    }

    #[test]
    fn library_dot_and_stats() {
        let ins = inputs(&[
            ("a", vec_val(&[1.0, 2.0, 3.0])),
            ("b", vec_val(&[4.0, 5.0, 6.0])),
        ]);
        let (v, stats) = eval_with_stats(&"(dot #3 a b)".parse().unwrap(), &ins).unwrap();
        assert_eq!(v.as_num(), Some(32.0));
        assert_eq!(stats.lib_calls, 1);
        assert!(stats.lib_time.contains_key("dot"));
    }

    #[test]
    fn library_gemv_and_variants() {
        let a = Value::from(Tensor::matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let ins = inputs(&[
            ("A", a),
            ("B", vec_val(&[1.0, 1.0])),
            ("C", vec_val(&[0.0, 0.0])),
        ]);
        let v = ev("(gemv #2 #2 1 A B 0 C)", &ins).unwrap();
        assert_eq!(v.to_tensor().unwrap().data(), &[3.0, 7.0]);
        let vt = ev("(gemvT #2 #2 1 A B 0 C)", &ins).unwrap();
        assert_eq!(vt.to_tensor().unwrap().data(), &[4.0, 6.0]);
    }

    #[test]
    fn library_calls_agree_with_loop_forms() {
        // dot call vs ifold form on the same inputs.
        let ins = inputs(&[
            ("a", vec_val(&[1.5, -2.0, 3.0])),
            ("b", vec_val(&[2.0, 0.5, -1.0])),
        ]);
        let loopy = dsl::dot(3, dsl::sym("a"), dsl::sym("b"));
        let call: Expr = "(dot #3 a b)".parse().unwrap();
        assert_eq!(
            eval(&loopy, &ins).unwrap().as_num(),
            eval(&call, &ins).unwrap().as_num()
        );
    }

    #[test]
    fn memset_and_full() {
        let ins = inputs(&[]);
        let z = ev("(memset #4 0)", &ins).unwrap().to_tensor().unwrap();
        assert_eq!(z.data(), &[0.0; 4]);
        let f = ev("(full #3 2.5)", &ins).unwrap().to_tensor().unwrap();
        assert_eq!(f.data(), &[2.5; 3]);
    }

    #[test]
    fn nested_build_is_a_matrix() {
        let ins = inputs(&[]);
        let v = ev("(build #2 (lam (build #3 (lam (+ (* %1 3) %0)))))", &ins).unwrap();
        let t = v.to_tensor().unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }
}
