//! End-to-end execution of solutions with timing and coverage reporting.

use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

use liar_ir::Expr;

use crate::eval::{eval_with_stats, EvalError};
use crate::Value;

/// Timing of one solution run.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Total wall-clock time of the run.
    pub total: Duration,
    /// Time spent inside each library function (family name → time).
    pub lib_time: BTreeMap<&'static str, Duration>,
    /// Number of library calls.
    pub lib_calls: usize,
}

impl ExecStats {
    /// Fraction of run time spent inside library calls, per function —
    /// the paper's coverage metric (fig. 5). Values sum to ≤ 1.
    pub fn coverage(&self) -> BTreeMap<&'static str, f64> {
        let total = self.total.as_secs_f64();
        if total <= 0.0 {
            return BTreeMap::new();
        }
        self.lib_time
            .iter()
            .map(|(name, t)| (*name, (t.as_secs_f64() / total).min(1.0)))
            .collect()
    }

    /// Total coverage across all library functions.
    pub fn total_coverage(&self) -> f64 {
        self.coverage().values().sum::<f64>().min(1.0)
    }
}

/// Run a solution once, returning its value and timing stats.
///
/// # Errors
///
/// Propagates [`EvalError`] from the interpreter.
pub fn run(expr: &Expr, inputs: &HashMap<String, Value>) -> Result<(Value, ExecStats), EvalError> {
    let start = Instant::now();
    let (value, stats) = eval_with_stats(expr, inputs)?;
    let total = start.elapsed();
    Ok((
        value,
        ExecStats {
            total,
            lib_time: stats.lib_time,
            lib_calls: stats.lib_calls,
        },
    ))
}

/// Run a solution repeatedly within a time budget (at least once) and
/// report the mean run time and aggregate stats — the paper's "run each
/// solution as many times as we can over the course of one minute"
/// methodology, with a configurable budget.
///
/// # Errors
///
/// Propagates [`EvalError`] from the interpreter.
pub fn time_runs(
    expr: &Expr,
    inputs: &HashMap<String, Value>,
    budget: Duration,
) -> Result<(Duration, usize, ExecStats), EvalError> {
    let start = Instant::now();
    let mut runs = 0usize;
    let mut agg = ExecStats::default();
    loop {
        let (_, stats) = run(expr, inputs)?;
        runs += 1;
        agg.total += stats.total;
        agg.lib_calls += stats.lib_calls;
        for (k, v) in stats.lib_time {
            *agg.lib_time.entry(k).or_insert(Duration::ZERO) += v;
        }
        if start.elapsed() >= budget {
            break;
        }
    }
    let mean = agg.total / runs as u32;
    Ok((mean, runs, agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;
    use liar_ir::dsl;

    fn inputs(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn run_reports_stats() {
        let n = 512;
        let xs = Value::from(Tensor::vector((0..n).map(|i| i as f64).collect()));
        let ins = inputs(&[("xs", xs)]);
        let call: Expr = format!("(sum #{n} xs)").parse().unwrap();
        let (v, stats) = run(&call, &ins).unwrap();
        assert_eq!(v.as_num(), Some((n * (n - 1) / 2) as f64));
        assert_eq!(stats.lib_calls, 1);
        assert!(stats.total_coverage() <= 1.0);
    }

    #[test]
    fn coverage_is_zero_without_calls() {
        let ins = inputs(&[("xs", Value::from(Tensor::vector(vec![1.0; 64])))]);
        let loopy = dsl::vsum(64, dsl::sym("xs"));
        let (_, stats) = run(&loopy, &ins).unwrap();
        assert_eq!(stats.lib_calls, 0);
        assert_eq!(stats.total_coverage(), 0.0);
    }

    #[test]
    fn time_runs_executes_at_least_once() {
        let ins = inputs(&[("xs", Value::from(Tensor::vector(vec![1.0; 8])))]);
        let loopy = dsl::vsum(8, dsl::sym("xs"));
        let (mean, runs, _) = time_runs(&loopy, &ins, Duration::ZERO).unwrap();
        assert!(runs >= 1);
        assert!(mean > Duration::ZERO);
    }

    use liar_ir::Expr;
}
