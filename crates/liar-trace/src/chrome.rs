//! Chrome trace-event JSON export.
//!
//! Renders a flushed event stream as the [Trace Event Format] consumed
//! by `chrome://tracing` and Perfetto: spans become complete (`ph:"X"`)
//! events whose nesting the viewer reconstructs from `ts`/`dur`
//! containment per `tid`, instants become `ph:"i"`, counters `ph:"C"`,
//! and each lane gets a `thread_name` metadata record. Hand-rolled JSON,
//! like everywhere else in this dependency-free workspace.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{Event, EventKind};

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn num(v: f64) -> String {
    if v.is_finite() {
        // Counts and durations; plain formatting is valid JSON.
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn args_obj(args: &[(&'static str, f64)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(k, out);
        out.push_str("\":");
        out.push_str(&num(*v));
    }
    out.push('}');
}

/// Render events as a Chrome trace-event JSON document
/// (`{"traceEvents": [...]}`). `lane_names` maps [`Event::lane`] to a
/// `thread_name` the viewer shows; missing names fall back to
/// `lane-<i>`.
pub fn trace_json(events: &[Event], lane_names: &[&str]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    let max_lane = events.iter().map(|e| e.lane + 1).max().unwrap_or(0);
    for lane in 0..max_lane.max(lane_names.len()) {
        push_sep(&mut out, &mut first);
        let name = lane_names.get(lane).copied().unwrap_or("");
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"name\":\"thread_name\",\"args\":{{\"name\":\""
        ));
        if name.is_empty() {
            out.push_str(&format!("lane-{lane}"));
        } else {
            escape(name, &mut out);
        }
        out.push_str("\"}}");
    }

    for e in events {
        push_sep(&mut out, &mut first);
        out.push_str("{\"name\":\"");
        escape(&e.name, &mut out);
        out.push_str(&format!("\",\"pid\":1,\"tid\":{},\"ts\":{}", e.lane, e.start_us));
        match e.kind {
            EventKind::Span => {
                out.push_str(&format!(",\"ph\":\"X\",\"dur\":{}", e.dur_us));
            }
            EventKind::Instant => {
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
            EventKind::Counter => {
                out.push_str(",\"ph\":\"C\"");
            }
        }
        out.push_str(",\"args\":");
        args_obj(&e.args, &mut out);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::{Recorder, TraceSink};

    #[test]
    fn export_contains_nested_spans_and_metadata() {
        let rec = Recorder::new();
        let mut sink = TraceSink::attached(&rec, "pipeline");
        let outer = sink.begin("saturate");
        let inner = sink.begin("search/\"quoted\"");
        sink.end(inner);
        sink.end(outer);
        sink.counter("n_nodes", 42.0);
        sink.instant("ban", &[("rule", 3.0)]);
        sink.flush();

        let json = rec.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.trim_end().ends_with("]}"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("{\"name\":\"pipeline\"}"), "lane name metadata");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("search/\\\"quoted\\\""), "names are escaped");
        // Balanced braces/brackets: a cheap well-formedness check (no
        // parser in this crate; the CLI tests parse it for real).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_recorder_exports_valid_skeleton() {
        let rec = Recorder::new();
        let json = rec.chrome_trace_json();
        assert_eq!(json, "{\"traceEvents\":[\n\n]}\n");
    }
}
