//! Fixed-bucket histograms for latency distributions.
//!
//! A [`Histogram`] is a row of atomic counters over caller-chosen upper
//! bucket bounds (plus an implicit `+Inf` overflow bucket), so `observe`
//! is lock-free and shared-reference, and a [`HistogramSnapshot`] can be
//! taken at any time for quantile estimation or Prometheus exposition.
//! Prometheus semantics throughout: a value lands in the first bucket
//! whose upper bound is `>=` the value (bounds are inclusive).

use std::sync::atomic::{AtomicU64, Ordering};

/// Default latency buckets in milliseconds: roughly logarithmic from
/// 250 µs to 10 s, matching the serve-path latencies seen in
/// `BENCH_serve.json`.
pub const LATENCY_MS_BOUNDS: [f64; 14] = [
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10_000.0,
];

/// A fixed-bucket histogram with atomic counters.
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>, // bounds.len() + 1; last is the +Inf bucket
    sum_milli: AtomicU64,   // observed values accumulated in thousandths
    total: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds. An `+Inf`
    /// overflow bucket is appended implicitly.
    ///
    /// # Panics
    /// If `bounds` is empty or not strictly ascending and finite.
    pub fn new(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for w in bounds.windows(2) {
            assert!(w[0] < w[1], "histogram bounds must be strictly ascending");
        }
        assert!(
            bounds.iter().all(|b| b.is_finite() && *b > 0.0),
            "histogram bounds must be finite and positive"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_milli: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// The default latency histogram ([`LATENCY_MS_BOUNDS`], values in
    /// milliseconds).
    pub fn latency_ms() -> Histogram {
        Histogram::new(&LATENCY_MS_BOUNDS)
    }

    /// Record one observation (same unit as the bounds). Negative or
    /// non-finite values clamp to zero.
    pub fn observe(&self, value: f64) {
        let v = if value.is_finite() && value > 0.0 { value } else { 0.0 };
        let idx = self.bounds.partition_point(|b| v > *b);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_milli.fetch_add((v * 1000.0).round() as u64, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (individual counters are
    /// read relaxed; concurrent observers may be torn by one count,
    /// which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            sum: self.sum_milli.load(Ordering::Relaxed) as f64 / 1000.0,
            count: self.total.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`], also the wire/JSON form used by
/// the serve `metrics` op.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds, ascending (the `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, `bounds.len() + 1` entries (last is `+Inf`).
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over the given bounds (for parsing defaults).
    pub fn empty(bounds: &[f64]) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket holding the target rank. Values beyond the last
    /// finite bound report that bound (the estimate saturates). Returns
    /// 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if (cum as f64) >= target && c > 0 {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(b) => *b,
                    // +Inf bucket: saturate at the last finite bound.
                    None => return *self.bounds.last().unwrap(),
                };
                let frac = (target - prev as f64) / c as f64;
                return lower + (upper - lower) * frac.clamp(0.0, 1.0);
            }
        }
        *self.bounds.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // Exactly on an edge lands *in* that bucket (Prometheus `le`).
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        // Just past an edge lands in the next bucket.
        h.observe(1.000001);
        // Overflow lands in +Inf.
        h.observe(100.0);
        // Clamped garbage lands in the first bucket.
        h.observe(-3.0);
        h.observe(f64::NAN);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![3, 2, 1, 1]);
        assert_eq!(s.count, 7);
    }

    #[test]
    fn sum_and_mean_accumulate() {
        let h = Histogram::new(&[10.0]);
        h.observe(1.5);
        h.observe(2.5);
        let s = h.snapshot();
        assert!((s.sum - 4.0).abs() < 1e-9, "{}", s.sum);
        assert!((s.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        // 100 observations uniformly in (1, 2]: all in the second bucket.
        for i in 0..100 {
            h.observe(1.0 + (i as f64 + 1.0) / 100.0);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        assert!((1.0..=2.0).contains(&p50), "{p50}");
        assert!((p50 - 1.5).abs() < 0.02, "{p50}");
        let p99 = s.quantile(0.99);
        assert!(p99 > 1.95 && p99 <= 2.0, "{p99}");
    }

    #[test]
    fn quantile_saturates_at_last_finite_bound() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(50.0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 2.0);
        assert_eq!(s.quantile(0.99), 2.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = Histogram::latency_ms().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.counts.len(), LATENCY_MS_BOUNDS.len() + 1);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    fn empty_snapshot_quantiles_are_zero_at_every_q() {
        let s = HistogramSnapshot::empty(&[1.0, 2.0, 4.0]);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 0.0, "q={q}");
        }
        // Out-of-range q clamps rather than panicking or extrapolating.
        assert_eq!(s.quantile(-1.0), 0.0);
        assert_eq!(s.quantile(7.0), 0.0);
    }

    #[test]
    fn overflow_bucket_never_interpolates_past_the_last_bound() {
        // Half the mass in a finite bucket, half in +Inf: every quantile
        // whose rank falls in the overflow bucket must saturate at the
        // last finite bound instead of interpolating toward infinity.
        let h = Histogram::new(&[1.0, 2.0]);
        for _ in 0..5 {
            h.observe(1.5);
        }
        for _ in 0..5 {
            h.observe(1e9);
        }
        let s = h.snapshot();
        assert!(s.quantile(0.25) <= 2.0);
        assert_eq!(s.quantile(0.75), 2.0);
        assert_eq!(s.quantile(1.0), 2.0);
        // The sum still reflects the true observations, not the clamp.
        assert!(s.sum > 1e9);
    }

    #[test]
    fn single_observation_p50_and_p99_land_in_its_bucket() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        h.observe(1.7); // second bucket: (1, 2]
        let s = h.snapshot();
        let (p50, p99) = (s.quantile(0.5), s.quantile(0.99));
        // With one observation every quantile has the same rank; the
        // estimate must come from the (1, 2] bucket for both.
        assert!((1.0..=2.0).contains(&p50), "{p50}");
        assert!((1.0..=2.0).contains(&p99), "{p99}");
        assert!(p50 <= p99, "quantiles must be monotone: {p50} > {p99}");
    }

    #[test]
    fn out_of_range_q_clamps_on_populated_histograms() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(0.5);
        let s = h.snapshot();
        assert_eq!(s.quantile(-0.5), s.quantile(0.0));
        assert_eq!(s.quantile(1.5), s.quantile(1.0));
    }
}
