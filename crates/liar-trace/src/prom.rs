//! Prometheus text exposition (version 0.0.4) rendering.
//!
//! [`PromWriter`] accumulates `# HELP`/`# TYPE` annotated metric
//! families — counters, gauges, and cumulative-bucket histograms from
//! [`HistogramSnapshot`] — into the plain-text format every Prometheus
//! scraper accepts. The serve layer's `metrics` op ships plain data;
//! `liar stats --prometheus` renders it client-side with this writer.

use crate::HistogramSnapshot;

/// Incremental builder for a Prometheus text exposition document.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

impl PromWriter {
    /// A new, empty writer.
    pub fn new() -> PromWriter {
        PromWriter::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    /// Emit a monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "counter");
        self.out.push_str(&format!("{name} {}\n", fmt_value(value)));
    }

    /// Emit a point-in-time gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        self.out.push_str(&format!("{name} {}\n", fmt_value(value)));
    }

    /// Emit a gauge with constant labels — the `*_build_info` idiom:
    /// a gauge pinned to `1` whose labels carry the metadata. Label
    /// values are escaped per the exposition format (`\`, `"`, newline).
    pub fn labeled_gauge(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.header(name, help, "gauge");
        let rendered: Vec<String> = labels
            .iter()
            .map(|(k, v)| {
                let escaped = v
                    .replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n");
                format!("{k}=\"{escaped}\"")
            })
            .collect();
        self.out.push_str(&format!(
            "{name}{{{}}} {}\n",
            rendered.join(","),
            fmt_value(value)
        ));
    }

    /// Emit a histogram family: cumulative `_bucket{le="..."}` series
    /// ending in `+Inf`, plus `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.header(name, help, "histogram");
        let mut cum = 0u64;
        for (i, c) in snap.counts.iter().enumerate() {
            cum += c;
            let le = match snap.bounds.get(i) {
                Some(b) => fmt_value(*b),
                None => "+Inf".to_string(),
            };
            self.out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        self.out.push_str(&format!("{name}_sum {}\n", fmt_value(snap.sum)));
        self.out.push_str(&format!("{name}_count {}\n", snap.count));
    }

    /// The rendered exposition document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// A minimal well-formedness check on an exposition document: every
/// non-comment, non-blank line must be `name[{labels}] value`, and every
/// `# TYPE` histogram must end its bucket series at `le="+Inf"`. Used by
/// tests and the CI smoke step (this is a format sanity check, not a
/// full Prometheus parser).
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut histogram_families: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| format!("line {}: bare # TYPE", lineno + 1))?;
            let kind = parts.next().ok_or_else(|| format!("line {}: # TYPE without kind", lineno + 1))?;
            if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                return Err(format!("line {}: unknown metric type {kind}", lineno + 1));
            }
            if kind == "histogram" {
                histogram_families.push(name.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // `name{labels} value` or `name value`.
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(pair) => pair,
            None => return Err(format!("line {}: no sample value: {line}", lineno + 1)),
        };
        if value_part.parse::<f64>().is_err()
            && !["+Inf", "-Inf", "NaN"].contains(&value_part)
        {
            return Err(format!("line {}: bad sample value {value_part}", lineno + 1));
        }
        let name = name_part.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.chars().next().unwrap().is_ascii_digit()
        {
            return Err(format!("line {}: bad metric name {name}", lineno + 1));
        }
    }
    for fam in histogram_families {
        if !text.contains(&format!("{fam}_bucket{{le=\"+Inf\"}}")) {
            return Err(format!("histogram {fam} lacks a +Inf bucket"));
        }
        if !text.contains(&format!("{fam}_count ")) {
            return Err(format!("histogram {fam} lacks a _count sample"));
        }
    }
    Ok(())
}

/// Audit an exposition document's metric families against a naming
/// convention: every `# TYPE`d family must start with `prefix`, and no
/// family may be declared twice (a duplicate `# TYPE` means two call
/// sites emitted the same family — Prometheus rejects such scrapes).
/// Returns the family names seen, in order.
pub fn audit_metric_names(text: &str, prefix: &str) -> Result<Vec<String>, String> {
    let mut seen: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let Some(rest) = line.strip_prefix("# TYPE ") else {
            continue;
        };
        let name = rest
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {}: bare # TYPE", lineno + 1))?;
        if !name.starts_with(prefix) {
            return Err(format!(
                "line {}: metric {name} violates the {prefix}* naming convention",
                lineno + 1
            ));
        }
        if seen.iter().any(|s| s == name) {
            return Err(format!("line {}: metric {name} declared twice", lineno + 1));
        }
        seen.push(name.to_string());
    }
    Ok(seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn renders_and_validates_counters_gauges_histograms() {
        let h = Histogram::new(&[1.0, 2.5]);
        h.observe(0.5);
        h.observe(2.0);
        h.observe(9.0);
        let mut w = PromWriter::new();
        w.counter("liar_requests_total", "Total requests.", 7.0);
        w.gauge("liar_queue_depth", "Jobs waiting.", 2.0);
        w.histogram("liar_request_ms", "Request latency.", &h.snapshot());
        let text = w.finish();

        assert!(text.contains("# TYPE liar_requests_total counter\n"));
        assert!(text.contains("liar_requests_total 7\n"));
        assert!(text.contains("# TYPE liar_queue_depth gauge\n"));
        // Buckets are cumulative: 1, 2, 3.
        assert!(text.contains("liar_request_ms_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("liar_request_ms_bucket{le=\"2.5\"} 2\n"));
        assert!(text.contains("liar_request_ms_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("liar_request_ms_count 3\n"));
        validate_exposition(&text).expect("valid exposition");
    }

    #[test]
    fn labeled_gauge_renders_and_escapes() {
        let mut w = PromWriter::new();
        w.labeled_gauge(
            "liar_build_info",
            "Build metadata.",
            &[("version", "0.1.0"), ("weird", "a\"b\\c\nd")],
            1.0,
        );
        let text = w.finish();
        assert!(text.contains(
            "liar_build_info{version=\"0.1.0\",weird=\"a\\\"b\\\\c\\nd\"} 1\n"
        ));
        validate_exposition(&text).expect("valid exposition");
    }

    #[test]
    fn audit_enforces_prefix_and_uniqueness() {
        let mut w = PromWriter::new();
        w.counter("liar_requests_total", "Total.", 1.0);
        w.gauge("liar_queue_depth", "Depth.", 0.0);
        let text = w.finish();
        assert_eq!(
            audit_metric_names(&text, "liar_").unwrap(),
            ["liar_requests_total", "liar_queue_depth"]
        );
        assert!(audit_metric_names(&text, "other_").is_err());

        let mut w = PromWriter::new();
        w.gauge("liar_x", "X.", 0.0);
        w.gauge("liar_x", "X again.", 1.0);
        assert!(audit_metric_names(&w.finish(), "liar_")
            .unwrap_err()
            .contains("declared twice"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_exposition("no_value_here\n").is_err());
        assert!(validate_exposition("name not-a-number\n").is_err());
        assert!(validate_exposition("# TYPE x flavor\nx 1\n").is_err());
        assert!(
            validate_exposition("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n")
                .is_err(),
            "histogram without +Inf bucket"
        );
        assert!(validate_exposition("9lives 1\n").is_err(), "bad name");
    }
}
