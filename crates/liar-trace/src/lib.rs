//! `liar-trace`: structured tracing for the LIAR pipeline.
//!
//! The pipeline (saturate → extract → lift → serve) is instrumented with
//! hierarchical **spans** recorded against a shared [`Recorder`]. The
//! design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Every recording call first checks one
//!    relaxed atomic load and branches away; no allocation, no clock
//!    read, no lock. Call sites that would pay to *format* a span name
//!    gate on [`TraceSink::on`] first.
//! 2. **No perturbation of results.** The recorder only ever observes —
//!    it never feeds back into search, scheduling, or extraction. The
//!    repo's bit-identical determinism walls (parallel, semi-naive,
//!    snapshot) run with tracing on and off to enforce this.
//! 3. **Deterministic flush order.** Events are buffered in per-thread
//!    [`TraceSink`]s (lock-free appends) and merged at flush in *lane
//!    registration order*, preserving per-lane append order — never by
//!    wall-clock sort, which would be run-dependent.
//!
//! On top of the span stream sit three consumers:
//!
//! * [`chrome::trace_json`] — Chrome trace-event JSON (`chrome://tracing`
//!   / Perfetto) via [`Recorder::chrome_trace_json`];
//! * [`prom::PromWriter`] — Prometheus text exposition for counters,
//!   gauges and [`Histogram`]s;
//! * [`self_times`] — per-name self-time aggregation (span duration
//!   minus child spans) backing `liar profile` and the `--verbose`
//!   per-rule table.
//!
//! See `docs/OBSERVABILITY.md` for the span taxonomy and metric names.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod chrome;
pub mod flight;
pub mod hist;
pub mod prom;

pub use flight::{FlightEvent, FlightKind, FlightRecorder};
pub use hist::{Histogram, HistogramSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// What a recorded [`Event`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A duration span (`ph:"X"` in Chrome trace terms).
    Span,
    /// A point-in-time marker (`ph:"i"`).
    Instant,
    /// A sampled counter value (`ph:"C"`); the value lives in `args`.
    Counter,
}

/// One recorded event. Timestamps are microseconds since the recorder's
/// epoch (a [`Instant`] captured at construction), so they are monotonic
/// and process-local.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Span/marker/counter name (e.g. `"search/idiom-gemv"`).
    pub name: String,
    /// Lane index (maps to a Chrome `tid`); see [`Recorder::lane_names`].
    pub lane: usize,
    /// Microseconds from the recorder epoch to the event start.
    pub start_us: u64,
    /// Span duration in microseconds (0 for instants and counters).
    pub dur_us: u64,
    /// Duration minus time spent in child spans on the same lane.
    pub self_us: u64,
    /// Span, instant, or counter.
    pub kind: EventKind,
    /// Numeric annotations (match counts, node counts, …).
    pub args: Vec<(&'static str, f64)>,
}

struct Lane {
    name: String,
    events: Vec<Event>,
}

/// Thread-safe event collector shared by every instrumented layer.
///
/// The recorder itself is only touched at *flush* (and for the enabled
/// check); the hot path appends to a thread-local [`TraceSink`] buffer.
pub struct Recorder {
    enabled: AtomicBool,
    epoch: Instant,
    lanes: Mutex<Vec<Lane>>,
}

impl Recorder {
    /// A new, enabled recorder.
    pub fn new() -> Arc<Recorder> {
        Arc::new(Recorder {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            lanes: Mutex::new(Vec::new()),
        })
    }

    /// A new recorder that starts disabled (recording calls reduce to an
    /// atomic load and a branch until [`Recorder::set_enabled`] flips it).
    pub fn off() -> Arc<Recorder> {
        let r = Recorder::new();
        r.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Toggle recording. Spans already open keep their begin timestamps;
    /// disabling only stops *new* events.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording calls currently record (one relaxed load).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Register a named lane (a Chrome `tid`) and return its index.
    /// Callers assign lanes deterministically (by role, not OS thread
    /// id), which is what makes the flush order reproducible.
    pub fn lane(&self, name: &str) -> usize {
        let mut lanes = self.lanes.lock().unwrap();
        lanes.push(Lane {
            name: name.to_string(),
            events: Vec::new(),
        });
        lanes.len() - 1
    }

    fn absorb(&self, lane: usize, events: Vec<Event>) {
        let mut lanes = self.lanes.lock().unwrap();
        if let Some(l) = lanes.get_mut(lane) {
            l.events.extend(events);
        }
    }

    /// All flushed events, concatenated in lane-registration order with
    /// per-lane append order preserved (the deterministic merge).
    pub fn events(&self) -> Vec<Event> {
        let lanes = self.lanes.lock().unwrap();
        let mut out = Vec::new();
        for (i, l) in lanes.iter().enumerate() {
            out.extend(l.events.iter().cloned().map(|mut e| {
                e.lane = i;
                e
            }));
        }
        out
    }

    /// Lane names in registration order (indexable by [`Event::lane`]).
    pub fn lane_names(&self) -> Vec<String> {
        self.lanes.lock().unwrap().iter().map(|l| l.name.clone()).collect()
    }

    /// Drop all flushed events and lanes (the enabled flag is untouched).
    pub fn clear(&self) {
        self.lanes.lock().unwrap().clear();
    }

    /// Render every flushed event as Chrome trace-event JSON; see
    /// [`chrome::trace_json`].
    pub fn chrome_trace_json(&self) -> String {
        let names = self.lane_names();
        let names: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        chrome::trace_json(&self.events(), &names)
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .field("lanes", &self.lanes.lock().unwrap().len())
            .finish()
    }
}

/// Token returned by [`TraceSink::begin`]; pass it back to
/// [`TraceSink::end`]. A token from a disabled sink is inert.
#[derive(Clone, Copy, Debug)]
pub struct SpanToken(usize);

impl SpanToken {
    /// An inert token: [`TraceSink::end`] on it does nothing. Useful when
    /// a call site conditionally skips opening a span.
    pub const NOOP: SpanToken = SpanToken(usize::MAX);
}

struct Open {
    idx: usize,
    child_us: u64,
}

/// A per-thread (or per-role) event buffer. All hot-path recording goes
/// through a sink: appends are plain `Vec` pushes, and the shared
/// [`Recorder`] is only locked at [`TraceSink::flush`] (or drop).
///
/// A detached sink ([`TraceSink::off`]) makes every call a no-op branch,
/// so instrumented code holds a sink unconditionally.
pub struct TraceSink {
    shared: Option<Arc<Recorder>>,
    lane: usize,
    buf: Vec<Event>,
    open: Vec<Open>,
}

impl TraceSink {
    /// A detached sink: every recording call is a branch and nothing else.
    pub fn off() -> TraceSink {
        TraceSink {
            shared: None,
            lane: 0,
            buf: Vec::new(),
            open: Vec::new(),
        }
    }

    /// A sink feeding `recorder` on a fresh lane named `lane_name`.
    pub fn attached(recorder: &Arc<Recorder>, lane_name: &str) -> TraceSink {
        TraceSink {
            lane: recorder.lane(lane_name),
            shared: Some(Arc::clone(recorder)),
            buf: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Whether recording is live right now: attached *and* the recorder
    /// is enabled (one atomic load). Use this to gate span-name
    /// formatting that would otherwise pay when disabled.
    #[inline]
    pub fn on(&self) -> bool {
        match &self.shared {
            Some(r) => r.enabled.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// The recorder this sink feeds, if attached.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.shared.as_ref()
    }

    /// A sibling sink on its own lane of the same recorder (detached if
    /// this sink is detached). Lets an owner hand deterministic lanes to
    /// helper roles.
    pub fn fork(&self, lane_name: &str) -> TraceSink {
        match &self.shared {
            Some(r) => TraceSink::attached(r, lane_name),
            None => TraceSink::off(),
        }
    }

    #[inline]
    fn now_us(&self) -> u64 {
        match &self.shared {
            Some(r) => r.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// Open a span. Returns a token to pass to [`TraceSink::end`];
    /// spans must close in LIFO order (enforced: an out-of-order end
    /// closes the inner spans first).
    pub fn begin(&mut self, name: &str) -> SpanToken {
        if !self.on() {
            return SpanToken::NOOP;
        }
        self.begin_owned(name.to_string())
    }

    /// [`TraceSink::begin`] for formatted names: the formatting only
    /// happens when recording is live, so hot loops can write
    /// `sink.begin_args(format_args!("search/{}", rule))` without paying
    /// for the string when tracing is off.
    pub fn begin_args(&mut self, name: std::fmt::Arguments<'_>) -> SpanToken {
        if !self.on() {
            return SpanToken::NOOP;
        }
        self.begin_owned(name.to_string())
    }

    /// [`TraceSink::instant`] for formatted names; formats only when live.
    pub fn instant_args(&mut self, name: std::fmt::Arguments<'_>, args: &[(&'static str, f64)]) {
        if !self.on() {
            return;
        }
        let name = name.to_string();
        self.instant(&name, args);
    }

    fn begin_owned(&mut self, name: String) -> SpanToken {
        let idx = self.buf.len();
        self.buf.push(Event {
            name,
            lane: self.lane,
            start_us: self.now_us(),
            dur_us: 0,
            self_us: 0,
            kind: EventKind::Span,
            args: Vec::new(),
        });
        self.open.push(Open { idx, child_us: 0 });
        SpanToken(idx)
    }

    /// Close a span opened with [`TraceSink::begin`].
    pub fn end(&mut self, token: SpanToken) {
        self.end_with(token, &[]);
    }

    /// Close a span, attaching numeric annotations gathered during it.
    pub fn end_with(&mut self, token: SpanToken, args: &[(&'static str, f64)]) {
        if token.0 == usize::MAX {
            return;
        }
        let now = self.now_us();
        while let Some(top) = self.open.pop() {
            let dur = now.saturating_sub(self.buf[top.idx].start_us);
            self.buf[top.idx].dur_us = dur;
            self.buf[top.idx].self_us = dur.saturating_sub(top.child_us);
            if let Some(parent) = self.open.last_mut() {
                parent.child_us += dur;
            }
            if top.idx == token.0 {
                self.buf[top.idx].args.extend_from_slice(args);
                return;
            }
        }
    }

    /// Record a point-in-time marker (e.g. a scheduler ban).
    pub fn instant(&mut self, name: &str, args: &[(&'static str, f64)]) {
        if !self.on() {
            return;
        }
        self.buf.push(Event {
            name: name.to_string(),
            lane: self.lane,
            start_us: self.now_us(),
            dur_us: 0,
            self_us: 0,
            kind: EventKind::Instant,
            args: args.to_vec(),
        });
    }

    /// Sample a counter (e.g. e-graph node count after a rebuild).
    pub fn counter(&mut self, name: &str, value: f64) {
        if !self.on() {
            return;
        }
        self.buf.push(Event {
            name: name.to_string(),
            lane: self.lane,
            start_us: self.now_us(),
            dur_us: 0,
            self_us: 0,
            kind: EventKind::Counter,
            args: vec![("value", value)],
        });
    }

    /// Push this sink's buffered events into the shared recorder. Called
    /// automatically on drop; call it explicitly at phase boundaries to
    /// make events visible to concurrent scrapers.
    ///
    /// A flush while spans are still open is a no-op: open spans hold
    /// indices into the buffer, so absorbing it early would dangle them.
    /// (On an error path that unwinds past open spans, their buffered
    /// events are dropped rather than emitted half-formed.)
    pub fn flush(&mut self) {
        if !self.open.is_empty() {
            return;
        }
        if let Some(rec) = &self.shared {
            if !self.buf.is_empty() {
                rec.absorb(self.lane, std::mem::take(&mut self.buf));
            }
        }
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Per-name aggregate of span time, the data model behind `liar profile`.
#[derive(Clone, Debug, PartialEq)]
pub struct SelfTime {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Total wall time across those spans, microseconds.
    pub total_us: u64,
    /// Total time *not* attributed to child spans, microseconds.
    pub self_us: u64,
}

/// Aggregate spans by name, sorted by descending self-time (ties broken
/// by name, so the table is stable run to run up to timing noise).
pub fn self_times(events: &[Event]) -> Vec<SelfTime> {
    use std::collections::BTreeMap;
    let mut by_name: BTreeMap<&str, SelfTime> = BTreeMap::new();
    for e in events {
        if e.kind != EventKind::Span {
            continue;
        }
        let entry = by_name.entry(&e.name).or_insert_with(|| SelfTime {
            name: e.name.clone(),
            count: 0,
            total_us: 0,
            self_us: 0,
        });
        entry.count += 1;
        entry.total_us += e.dur_us;
        entry.self_us += e.self_us;
    }
    let mut out: Vec<SelfTime> = by_name.into_values().collect();
    out.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let rec = Recorder::off();
        let mut sink = TraceSink::attached(&rec, "t");
        let t = sink.begin("outer");
        sink.counter("n", 1.0);
        sink.instant("mark", &[]);
        sink.end(t);
        sink.flush();
        assert!(rec.events().is_empty());
        assert!(!sink.on());
    }

    #[test]
    fn detached_sink_is_inert() {
        let mut sink = TraceSink::off();
        let t = sink.begin("x");
        sink.end(t);
        sink.flush();
        assert!(!sink.on());
    }

    #[test]
    fn spans_nest_and_self_time_excludes_children() {
        let rec = Recorder::new();
        let mut sink = TraceSink::attached(&rec, "main");
        let outer = sink.begin("outer");
        let inner = sink.begin("inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
        sink.end(inner);
        let inner2 = sink.begin("inner");
        sink.end(inner2);
        sink.end_with(outer, &[("k", 3.0)]);
        sink.flush();

        let events = rec.events();
        assert_eq!(events.len(), 3);
        let outer = &events[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.args, vec![("k", 3.0)]);
        let child_total: u64 = events[1..].iter().map(|e| e.dur_us).sum();
        assert_eq!(outer.self_us, outer.dur_us - child_total);
        // Children start within and end within the parent.
        for c in &events[1..] {
            assert!(c.start_us >= outer.start_us);
            assert!(c.start_us + c.dur_us <= outer.start_us + outer.dur_us);
        }

        let agg = self_times(&events);
        assert_eq!(agg.len(), 2);
        let inner_agg = agg.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner_agg.count, 2);
        assert_eq!(inner_agg.total_us, inner_agg.self_us, "leaves keep all time");
    }

    #[test]
    fn out_of_order_end_closes_inner_spans_first() {
        let rec = Recorder::new();
        let mut sink = TraceSink::attached(&rec, "main");
        let outer = sink.begin("outer");
        let _leaked = sink.begin("leaked");
        sink.end(outer); // closes "leaked" too
        sink.flush();
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(events[0].dur_us >= events[1].dur_us, "outer spans its child");
        // The next span attaches at top level, not under a stale open.
        let mut sink2 = TraceSink::attached(&rec, "second");
        let t = sink2.begin("fresh");
        sink2.end(t);
        sink2.flush();
        assert_eq!(rec.events().len(), 3);
    }

    #[test]
    fn flush_merges_in_lane_registration_order() {
        let rec = Recorder::new();
        let mut a = TraceSink::attached(&rec, "lane-a");
        let mut b = TraceSink::attached(&rec, "lane-b");
        // b records and flushes *first*; merge order must still be a, b.
        let tb = b.begin("from-b");
        b.end(tb);
        b.flush();
        let ta = a.begin("from-a");
        a.end(ta);
        a.flush();
        let events = rec.events();
        assert_eq!(
            events.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            ["from-a", "from-b"],
            "lane order wins over wall-clock order"
        );
        assert_eq!(events[0].lane, 0);
        assert_eq!(events[1].lane, 1);
        assert_eq!(rec.lane_names(), ["lane-a", "lane-b"]);
    }

    #[test]
    fn toggling_enabled_gates_new_events_only() {
        let rec = Recorder::new();
        let mut sink = TraceSink::attached(&rec, "t");
        let t = sink.begin("kept");
        sink.end(t);
        rec.set_enabled(false);
        let t = sink.begin("dropped");
        sink.end(t);
        rec.set_enabled(true);
        let t = sink.begin("kept-again");
        sink.end(t);
        sink.flush();
        let names: Vec<_> = rec.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["kept", "kept-again"]);
    }

    #[test]
    fn sinks_flush_on_drop() {
        let rec = Recorder::new();
        {
            let mut sink = TraceSink::attached(&rec, "t");
            let t = sink.begin("x");
            sink.end(t);
        } // drop flushes
        assert_eq!(rec.events().len(), 1);
    }
}
