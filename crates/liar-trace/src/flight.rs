//! The flight recorder: a bounded ring buffer of structured events that
//! is cheap enough to leave on permanently.
//!
//! Spans ([`Recorder`](crate::Recorder)) answer *where time went*, but
//! only if a capture was running when the interesting thing happened. The
//! [`FlightRecorder`] closes that gap for post-mortems: the last
//! `capacity` notable events — rules firing, scheduler bans, budget
//! truncations, cache hits and misses, snapshot restores — are always
//! retained, stamped with a global sequence number, and drained in
//! **deterministic** (sequence) order. A live daemon serves its tail
//! through the `introspect` op without any pre-enabled capture.
//!
//! Recording takes one mutex lock and, once the ring is warm, no
//! allocation beyond the event's detail string. An event that falls off
//! the ring is gone; [`FlightRecorder::dropped`] counts how many were.

use std::collections::VecDeque;
use std::sync::Mutex;

/// What kind of thing happened. Wire names ([`FlightKind::name`]) are
/// stable: the serve protocol and `liar stats --inspect` print them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A rewrite rule changed the e-graph (detail: rule name; value:
    /// applications that changed it).
    RuleFired,
    /// The backoff scheduler banned a rule for this step (detail: rule
    /// name; value: the step index).
    RuleBanned,
    /// A search budget truncated a rule's match stream (detail: rule
    /// name; value: the match limit).
    BudgetTruncated,
    /// A request was answered from the in-memory saturation cache
    /// (detail: request fingerprint or kernel).
    CacheHit,
    /// A request missed every cache and ran cold.
    CacheMiss,
    /// A saturated e-graph was restored from the durable snapshot store
    /// (detail: request fingerprint; value: snapshot bytes when known).
    SnapshotRestore,
}

impl FlightKind {
    /// The stable wire name of this event kind.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::RuleFired => "rule_fired",
            FlightKind::RuleBanned => "rule_banned",
            FlightKind::BudgetTruncated => "budget_truncated",
            FlightKind::CacheHit => "cache_hit",
            FlightKind::CacheMiss => "cache_miss",
            FlightKind::SnapshotRestore => "snapshot_restore",
        }
    }

    /// Parse a wire name back into a kind.
    pub fn from_name(name: &str) -> Option<FlightKind> {
        [
            FlightKind::RuleFired,
            FlightKind::RuleBanned,
            FlightKind::BudgetTruncated,
            FlightKind::CacheHit,
            FlightKind::CacheMiss,
            FlightKind::SnapshotRestore,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Global sequence number (0-based, monotonically increasing across
    /// the recorder's lifetime) — the deterministic drain key.
    pub seq: u64,
    /// What happened.
    pub kind: FlightKind,
    /// What it happened to (rule name, fingerprint, kernel…).
    pub detail: String,
    /// A kind-specific measurement (see [`FlightKind`]); 0.0 when the
    /// kind carries none.
    pub value: f64,
}

struct Ring {
    events: VecDeque<FlightEvent>,
    next_seq: u64,
}

/// A bounded, thread-safe ring buffer of [`FlightEvent`]s. See the
/// [module docs](self).
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("recorded", &self.total_recorded())
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity),
                next_seq: 0,
            }),
            capacity,
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event, evicting the oldest if the ring is full.
    pub fn record(&self, kind: FlightKind, detail: impl Into<String>, value: f64) {
        let detail = detail.into();
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
        }
        ring.events.push_back(FlightEvent {
            seq,
            kind,
            detail,
            value,
        });
    }

    /// Events recorded over the recorder's lifetime (including evicted
    /// ones).
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().expect("flight ring poisoned").next_seq
    }

    /// Events that fell off the ring (recorded − retained).
    pub fn dropped(&self) -> u64 {
        let ring = self.ring.lock().expect("flight ring poisoned");
        ring.next_seq - ring.events.len() as u64
    }

    /// The last `n` events in ascending sequence order (the whole ring
    /// when `n >= len`). Non-destructive.
    pub fn tail(&self, n: usize) -> Vec<FlightEvent> {
        let ring = self.ring.lock().expect("flight ring poisoned");
        let skip = ring.events.len().saturating_sub(n);
        ring.events.iter().skip(skip).cloned().collect()
    }

    /// Remove and return every retained event, ascending sequence order.
    /// The sequence counter keeps running, so seq numbers never repeat.
    pub fn drain(&self) -> Vec<FlightEvent> {
        let mut ring = self.ring.lock().expect("flight ring poisoned");
        ring.events.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_drains_in_seq_order() {
        let fr = FlightRecorder::new(3);
        for i in 0..5 {
            fr.record(FlightKind::RuleFired, format!("r{i}"), i as f64);
        }
        assert_eq!(fr.total_recorded(), 5);
        assert_eq!(fr.dropped(), 2);
        let tail = fr.tail(10);
        assert_eq!(
            tail.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [2, 3, 4],
            "oldest two evicted, rest in seq order"
        );
        assert_eq!(tail[0].detail, "r2");
        let drained = fr.drain();
        assert_eq!(drained, tail, "drain returns the same deterministic order");
        assert!(fr.tail(10).is_empty(), "drain empties the ring");
        // Sequence numbers never restart.
        fr.record(FlightKind::CacheHit, "fp", 0.0);
        assert_eq!(fr.tail(1)[0].seq, 5);
    }

    #[test]
    fn tail_takes_the_last_n() {
        let fr = FlightRecorder::new(8);
        for i in 0..4 {
            fr.record(FlightKind::CacheMiss, format!("k{i}"), 0.0);
        }
        let tail = fr.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].detail, "k2");
        assert_eq!(tail[1].detail, "k3");
    }

    #[test]
    fn kind_wire_names_round_trip() {
        for kind in [
            FlightKind::RuleFired,
            FlightKind::RuleBanned,
            FlightKind::BudgetTruncated,
            FlightKind::CacheHit,
            FlightKind::CacheMiss,
            FlightKind::SnapshotRestore,
        ] {
            assert_eq!(FlightKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(FlightKind::from_name("warp_core_breach"), None);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let fr = FlightRecorder::new(0);
        fr.record(FlightKind::SnapshotRestore, "fp", 1.0);
        fr.record(FlightKind::SnapshotRestore, "fp2", 2.0);
        assert_eq!(fr.capacity(), 1);
        assert_eq!(fr.tail(10).len(), 1);
        assert_eq!(fr.tail(10)[0].detail, "fp2");
    }
}
