//! Figure experiments: solution evolution, coverage, and run-time speedups
//! (paper figs. 4–7).

use std::collections::BTreeMap;
use std::time::Duration;

use liar_core::{OptimizationReport, Target};
use liar_kernels::{values_approx_eq, Kernel};
use liar_runtime::exec;

use crate::harness::pipeline_for;

/// One point of fig. 4: e-graph size and step time per saturation step,
/// annotated with the solution found at that step.
#[derive(Debug, Clone)]
pub struct StepPoint {
    /// Saturation step.
    pub step: usize,
    /// Unique e-nodes after the step.
    pub enodes: usize,
    /// Wall-clock time of the step in seconds.
    pub time_s: f64,
    /// The solution summary at this step.
    pub solution: String,
    /// True when this step's best expression differs from the previous
    /// step's (fig. 4's "new best solution" arrows).
    pub improved: bool,
}

/// Fig. 4 data: optimize the gemv kernel and report every step.
pub fn fig4(target: Target) -> Vec<StepPoint> {
    let kernel = Kernel::Gemv;
    let report = optimize(kernel, target);
    step_points(&report)
}

fn optimize(kernel: Kernel, target: Target) -> OptimizationReport {
    let expr = kernel.expr(kernel.search_size());
    pipeline_for(kernel, target).optimize(&expr)
}

fn step_points(report: &OptimizationReport) -> Vec<StepPoint> {
    report
        .steps
        .iter()
        .enumerate()
        .map(|(i, s)| StepPoint {
            step: s.step,
            enodes: s.n_nodes,
            time_s: s.step_time.as_secs_f64(),
            solution: s.solution_summary(),
            improved: i == 0 || report.steps[i - 1].best != s.best,
        })
        .collect()
}

/// One point of fig. 5: per-library-function coverage of the gemv kernel's
/// solution at one saturation step.
#[derive(Debug, Clone)]
pub struct CoveragePoint {
    /// Saturation step.
    pub step: usize,
    /// Fraction of run time spent per library function.
    pub coverage: BTreeMap<String, f64>,
    /// The solution summary.
    pub solution: String,
}

/// Fig. 5 data: run each step's gemv/BLAS solution and measure the ratio
/// of time spent in library calls.
pub fn fig5() -> Vec<CoveragePoint> {
    let kernel = Kernel::Gemv;
    let n = kernel.bench_size();
    let inputs = kernel.inputs(n, 0xC60);
    let report = pipeline_for(kernel, Target::Blas).optimize(&kernel.expr(n));
    report
        .steps
        .iter()
        .map(|s| {
            let coverage = match exec::run(&s.best, &inputs) {
                Ok((_, stats)) => stats
                    .coverage()
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
                Err(_) => BTreeMap::new(),
            };
            CoveragePoint {
                step: s.step,
                coverage,
                solution: s.solution_summary(),
            }
        })
        .collect()
}

/// One point of fig. 6: run time of the gemv solution at one step, for the
/// BLAS and pure-C targets.
#[derive(Debug, Clone)]
pub struct RuntimePoint {
    /// Saturation step.
    pub step: usize,
    /// Mean run time of the BLAS-target solution (seconds).
    pub blas_s: Option<f64>,
    /// Mean run time of the pure-C-target solution (seconds).
    pub pure_c_s: Option<f64>,
}

/// Fig. 6 data: per-step gemv run times under both targets.
pub fn fig6(budget: Duration) -> Vec<RuntimePoint> {
    let kernel = Kernel::Gemv;
    let n = kernel.bench_size();
    let inputs = kernel.inputs(n, 0xC60);
    let blas = pipeline_for(kernel, Target::Blas).optimize(&kernel.expr(n));
    let pure_c = pipeline_for(kernel, Target::PureC).optimize(&kernel.expr(n));
    let steps = blas.steps.len().max(pure_c.steps.len());
    (0..steps)
        .map(|i| {
            let time_of = |r: &OptimizationReport| {
                r.steps
                    .get(i)
                    .or_else(|| r.steps.last())
                    .and_then(|s| exec::time_runs(&s.best, &inputs, budget).ok())
                    .map(|(mean, _, _)| mean.as_secs_f64())
            };
            RuntimePoint {
                step: i,
                blas_s: time_of(&blas),
                pure_c_s: time_of(&pure_c),
            }
        })
        .collect()
}

/// One bar group of fig. 7: run-time speedups of LIAR's solutions over the
/// hand-written reference implementation.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// The kernel.
    pub kernel: Kernel,
    /// Reference run time (seconds).
    pub reference_s: f64,
    /// BLAS-target solution speedup over the reference.
    pub blas: Option<f64>,
    /// Pure-C-target solution speedup.
    pub pure_c: Option<f64>,
    /// Best speedup over all extracted solutions (the paper's "Best" bar).
    pub best: Option<f64>,
    /// The BLAS solution summary (for the report).
    pub solution: String,
}

/// Fig. 7 configuration.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Per-solution measurement budget.
    pub budget: Duration,
    /// Kernels to skip (the paper excludes gemver, whose solutions did not
    /// finish within its one-minute budget).
    pub skip: Vec<Kernel>,
    /// Verify each solution's output against the reference first.
    pub verify: bool,
    /// Also time every distinct intermediate solution (needed for the
    /// "Best" bars; expensive for the interpreted O(n³) kernels).
    pub measure_intermediate: bool,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            budget: Duration::from_millis(200),
            skip: vec![Kernel::Gemver],
            verify: true,
            measure_intermediate: true,
        }
    }
}

impl Fig7Config {
    /// A configuration that finishes in seconds: shorter budgets and only
    /// final solutions ("Best" then coincides with the better of the two
    /// final bars).
    pub fn fast() -> Self {
        Fig7Config {
            budget: Duration::from_millis(60),
            measure_intermediate: false,
            ..Fig7Config::default()
        }
    }
}

/// Fig. 7 data: per-kernel speedups plus the geometric means.
pub fn fig7(config: &Fig7Config) -> (Vec<SpeedupRow>, Geomeans) {
    let mut rows = Vec::new();
    for kernel in Kernel::ALL {
        if config.skip.contains(&kernel) {
            continue;
        }
        rows.push(speedup_row(kernel, config));
    }
    let geo = Geomeans {
        blas: geomean(rows.iter().filter_map(|r| r.blas)),
        pure_c: geomean(rows.iter().filter_map(|r| r.pure_c)),
        best: geomean(rows.iter().filter_map(|r| r.best)),
    };
    (rows, geo)
}

/// Geometric means of the fig. 7 speedups.
#[derive(Debug, Clone, Copy)]
pub struct Geomeans {
    /// Over the BLAS bars.
    pub blas: f64,
    /// Over the pure-C bars.
    pub pure_c: f64,
    /// Over the best-solution bars.
    pub best: f64,
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0usize);
    for x in xs {
        log_sum += x.ln();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (log_sum / n as f64).exp()
    }
}

fn time_reference(kernel: Kernel, n: usize, inputs: &std::collections::HashMap<String, liar_runtime::Value>, budget: Duration) -> f64 {
    let start = std::time::Instant::now();
    let mut runs = 0u32;
    let mut total = Duration::ZERO;
    loop {
        let t0 = std::time::Instant::now();
        let _ = kernel.reference(n, inputs);
        total += t0.elapsed();
        runs += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    (total / runs).as_secs_f64()
}

fn speedup_row(kernel: Kernel, config: &Fig7Config) -> SpeedupRow {
    let n = kernel.bench_size();
    let inputs = kernel.inputs(n, 0xC60);
    let reference_value = kernel.reference(n, &inputs).expect("reference runs");
    let reference_s = time_reference(kernel, n, &inputs, config.budget);

    let measure = |report: &OptimizationReport, steps: &mut Vec<f64>| -> Option<f64> {
        let best = &report.best().best;
        if config.verify {
            let (value, _) = exec::run(best, &inputs).ok()?;
            if !values_approx_eq(&value, &reference_value, 1e-6 * n as f64) {
                return None;
            }
        }
        // Also measure every distinct intermediate solution for "Best".
        if config.measure_intermediate {
            let mut seen = Vec::new();
            for s in &report.steps {
                if seen.contains(&&s.best) {
                    continue;
                }
                seen.push(&s.best);
                if let Ok((mean, _, _)) =
                    exec::time_runs(&s.best, &inputs, config.budget / 4)
                {
                    steps.push(mean.as_secs_f64());
                }
            }
        }
        exec::time_runs(best, &inputs, config.budget)
            .ok()
            .map(|(mean, _, _)| mean.as_secs_f64())
    };

    let mut all_times = Vec::new();
    let blas_report = optimize_at(kernel, Target::Blas, n);
    let blas_s = measure(&blas_report, &mut all_times);
    let pure_c_report = optimize_at(kernel, Target::PureC, n);
    let pure_c_s = measure(&pure_c_report, &mut all_times);

    let best_s = all_times.iter().copied().fold(f64::INFINITY, f64::min);
    SpeedupRow {
        kernel,
        reference_s,
        blas: blas_s.map(|s| reference_s / s),
        pure_c: pure_c_s.map(|s| reference_s / s),
        best: (best_s.is_finite()).then(|| reference_s / best_s),
        solution: blas_report.best().solution_summary(),
    }
}

fn optimize_at(kernel: Kernel, target: Target, n: usize) -> OptimizationReport {
    pipeline_for(kernel, target).optimize(&kernel.expr(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert!(geomean(std::iter::empty()).is_nan());
    }

    #[test]
    fn fig4_reports_steps_and_solutions() {
        let points = fig4(Target::Blas);
        assert!(points.len() >= 2);
        assert_eq!(points[0].step, 0);
        assert!(
            points.last().unwrap().solution.contains("gemv"),
            "gemv should be found: {points:?}"
        );
        // e-node counts grow monotonically during saturation.
        for w in points.windows(2) {
            assert!(w[1].enodes >= w[0].enodes);
        }
    }

    #[test]
    fn fig7_single_kernel_speedup_is_positive() {
        let config = Fig7Config {
            budget: Duration::from_millis(20),
            skip: Kernel::ALL
                .iter()
                .copied()
                .filter(|k| *k != Kernel::Memset)
                .collect(),
            verify: true,
            measure_intermediate: false,
        };
        let (rows, _) = fig7(&config);
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert!(row.reference_s > 0.0);
        assert!(row.blas.unwrap_or(0.0) > 0.0, "{row:?}");
    }
}
