//! `bench-diff` — the bench regression sentry.
//!
//! Compares freshly generated `BENCH_*.json` documents against the
//! committed baselines in `baselines/` and fails (exit 1) on any metric
//! that moved past its policy's threshold (see `liar_bench::diff`).
//!
//! ```text
//! cargo run -p liar-bench --bin bench-diff -- \
//!     --baseline-dir baselines --current-dir . --out bench-verdict.json
//! ```
//!
//! Flags:
//!
//! * `--baseline-dir <DIR>` — committed baselines (default `baselines`)
//! * `--current-dir <DIR>`  — fresh documents (default `.`)
//! * `--out <FILE>`         — write the machine-readable verdict here
//! * `--bench <NAME>`       — restrict to one bench (repeatable)
//! * `--time-ratio <X>`     — time growth budget (default 1.5)
//! * `--time-floor-ms <X>`  — absolute noise floor, ms (default 2.0)
//! * `--ratio-slack <X>`    — overhead additive budget (default 0.25)
//!
//! A baseline that has no current counterpart (the bench didn't run) is
//! a failure; a current document with no baseline is skipped with a
//! warning so new benches can land before their first baseline commit.
//! Exit codes: 0 pass, 1 regression, 2 usage error.

use std::path::Path;
use std::process::ExitCode;

use liar_bench::diff::{diff_docs, verdict_json, DiffReport, Thresholds};
use liar_serve::json::parse;

/// The benched documents the sentry watches.
const BENCHES: [&str; 5] = ["ematch", "extract", "serve", "explain", "trace"];

fn fail_usage(msg: &str) -> ExitCode {
    eprintln!("bench-diff: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_dir = "baselines".to_string();
    let mut current_dir = ".".to_string();
    let mut out: Option<String> = None;
    let mut benches: Vec<String> = Vec::new();
    let mut th = Thresholds::default();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parsed = match arg.as_str() {
            "--baseline-dir" => val("--baseline-dir").map(|v| baseline_dir = v),
            "--current-dir" => val("--current-dir").map(|v| current_dir = v),
            "--out" => val("--out").map(|v| out = Some(v)),
            "--bench" => val("--bench").map(|v| benches.push(v)),
            "--time-ratio" => val("--time-ratio").and_then(|v| {
                v.parse().map(|x| th.time_ratio = x).map_err(|_| format!("bad --time-ratio {v}"))
            }),
            "--time-floor-ms" => val("--time-floor-ms").and_then(|v| {
                v.parse::<f64>()
                    .map(|x| th.time_floor_s = x / 1000.0)
                    .map_err(|_| format!("bad --time-floor-ms {v}"))
            }),
            "--ratio-slack" => val("--ratio-slack").and_then(|v| {
                v.parse().map(|x| th.ratio_slack = x).map_err(|_| format!("bad --ratio-slack {v}"))
            }),
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(msg) = parsed {
            return fail_usage(&msg);
        }
    }
    if benches.is_empty() {
        benches = BENCHES.iter().map(|s| s.to_string()).collect();
    } else if let Some(bad) = benches.iter().find(|b| !BENCHES.contains(&b.as_str())) {
        return fail_usage(&format!("unknown bench {bad} (expected one of {BENCHES:?})"));
    }

    let mut merged = DiffReport::default();
    let mut checked = 0usize;
    for bench in &benches {
        let file = format!("BENCH_{bench}.json");
        let base_path = Path::new(&baseline_dir).join(&file);
        let cur_path = Path::new(&current_dir).join(&file);
        let base_text = match std::fs::read_to_string(&base_path) {
            Ok(t) => t,
            Err(_) => {
                eprintln!("bench-diff: no baseline {} — skipping {bench}", base_path.display());
                continue;
            }
        };
        let cur_text = match std::fs::read_to_string(&cur_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "bench-diff: baseline exists but current {} is unreadable: {e}",
                    cur_path.display()
                );
                merged.regressions.push(liar_bench::diff::Finding {
                    bench: bench.clone(),
                    path: file.clone(),
                    baseline: "(document)".to_string(),
                    current: "(missing)".to_string(),
                    note: "bench document was not generated".to_string(),
                    regression: true,
                });
                continue;
            }
        };
        let (base, cur) = match (parse(&base_text), parse(&cur_text)) {
            (Ok(b), Ok(c)) => (b, c),
            (Err(e), _) => return fail_usage(&format!("{}: {e}", base_path.display())),
            (_, Err(e)) => return fail_usage(&format!("{}: {e}", cur_path.display())),
        };
        merged.merge(diff_docs(bench, &base, &cur, &th));
        checked += 1;
    }

    let verdict = verdict_json(&merged, &th);
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, verdict.to_json() + "\n") {
            return fail_usage(&format!("cannot write {path}: {e}"));
        }
    }

    println!(
        "bench-diff: {} documents, {} metrics compared, {} regressions, {} drifting",
        checked,
        merged.compared,
        merged.regressions.len(),
        merged.drift.len()
    );
    for f in &merged.regressions {
        println!("  FAIL {}::{} — {} → {} ({})", f.bench, f.path, f.baseline, f.current, f.note);
    }
    for f in merged.drift.iter().take(20) {
        println!("  drift {}::{} — {} → {} ({})", f.bench, f.path, f.baseline, f.current, f.note);
    }
    if merged.drift.len() > 20 {
        println!("  ... and {} more drifting metrics (see --out)", merged.drift.len() - 20);
    }
    if merged.pass() {
        println!("verdict: pass");
        ExitCode::SUCCESS
    } else {
        println!("verdict: fail");
        ExitCode::FAILURE
    }
}
