//! Regenerate the paper's tables.
//!
//! ```text
//! cargo run -p liar-bench --release --bin tables -- --table1
//! cargo run -p liar-bench --release --bin tables -- --table2   # BLAS
//! cargo run -p liar-bench --release --bin tables -- --table3   # PyTorch
//! cargo run -p liar-bench --release --bin tables -- --all
//! cargo run -p liar-bench --release --bin tables -- --table2 vsum gemv
//! ```

use liar_bench::harness;
use liar_core::Target;
use liar_kernels::Kernel;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let kernels: Vec<Kernel> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|name| {
            Kernel::from_name(name).unwrap_or_else(|| {
                eprintln!("unknown kernel {name}");
                std::process::exit(2);
            })
        })
        .collect();
    let all = flags.is_empty() || flags.contains(&"--all");

    if all || flags.contains(&"--table1") {
        println!("## Table I: kernels\n");
        println!("{}", harness::render_table1());
    }
    for (flag, target, label) in [
        ("--table2", Target::Blas, "Table II"),
        ("--table3", Target::Torch, "Table III"),
    ] {
        if !(all || flags.contains(&flag)) {
            continue;
        }
        println!("## {label}: solutions targeting {target}\n");
        let rows: Vec<_> = if kernels.is_empty() {
            harness::table_rows(target)
        } else {
            kernels
                .iter()
                .map(|&k| {
                    let report = harness::optimize_kernel(k, target);
                    let best = report.best();
                    harness::TableRow {
                        kernel: k,
                        solution: best.solution_summary(),
                        steps: best.step,
                        converged_at: report.convergence_step(),
                        enodes: best.n_nodes,
                        cost: best.cost,
                    }
                })
                .collect()
        };
        println!("{}", harness::render_table(target, &rows));
    }
}
