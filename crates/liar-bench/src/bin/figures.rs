//! Regenerate the paper's figures as CSV series.
//!
//! ```text
//! cargo run -p liar-bench --release --bin figures -- --fig4
//! cargo run -p liar-bench --release --bin figures -- --fig5
//! cargo run -p liar-bench --release --bin figures -- --fig6
//! cargo run -p liar-bench --release --bin figures -- --fig7
//! cargo run -p liar-bench --release --bin figures -- --all
//! ```

use std::time::Duration;

use liar_bench::figures::{self, Fig7Config};
use liar_core::Target;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let all = args.is_empty() || has("--all");

    if all || has("--fig4") {
        for (target, label) in [(Target::Blas, "4a"), (Target::Torch, "4b")] {
            println!("# Fig. {label}: gemv solutions over time, targeting {target}");
            println!("step,enodes,step_time_s,solution,new_best");
            for p in figures::fig4(target) {
                println!(
                    "{},{},{:.4},{},{}",
                    p.step,
                    p.enodes,
                    p.time_s,
                    p.solution.replace(',', ";"),
                    p.improved
                );
            }
            println!();
        }
    }
    if all || has("--fig5") {
        println!("# Fig. 5: coverage over time for gemv, targeting BLAS");
        println!("step,function,coverage,solution");
        for p in figures::fig5() {
            if p.coverage.is_empty() {
                println!("{},-,0.0,{}", p.step, p.solution.replace(',', ";"));
            }
            for (f, c) in &p.coverage {
                println!("{},{},{:.3},{}", p.step, f, c, p.solution.replace(',', ";"));
            }
        }
        println!();
    }
    if all || has("--fig6") {
        println!("# Fig. 6: gemv run times per step (seconds)");
        println!("step,blas_s,pure_c_s");
        for p in figures::fig6(Duration::from_millis(300)) {
            println!(
                "{},{},{}",
                p.step,
                p.blas_s.map_or("-".into(), |v| format!("{v:.6}")),
                p.pure_c_s.map_or("-".into(), |v| format!("{v:.6}")),
            );
        }
        println!();
    }
    if all || has("--fig7") {
        println!("# Fig. 7: run-time speedup over reference implementations");
        println!("kernel,blas_speedup,pure_c_speedup,best_speedup,reference_s,blas_solution");
        let config = if has("--fast") {
            Fig7Config::fast()
        } else {
            Fig7Config::default()
        };
        let (rows, geo) = figures::fig7(&config);
        for r in &rows {
            println!(
                "{},{},{},{},{:.6},{}",
                r.kernel.name(),
                r.blas.map_or("-".into(), |v| format!("{v:.2}")),
                r.pure_c.map_or("-".into(), |v| format!("{v:.3}")),
                r.best.map_or("-".into(), |v| format!("{v:.2}")),
                r.reference_s,
                r.solution.replace(',', ";"),
            );
        }
        println!(
            "geomean,{:.2},{:.3},{:.2},,-",
            geo.blas, geo.pure_c, geo.best
        );
        println!("# (gemver excluded, as in the paper)");
    }
}
