//! A minimal wall-clock benchmarking harness.
//!
//! The workspace builds offline with no external dependencies, so the
//! benches use this module instead of criterion: fixed sample counts, one
//! warm-up run, and a median/min/mean summary per benchmark. The benches
//! are plain binaries (`harness = false`), so `cargo bench` runs their
//! `main` functions directly.

use std::time::{Duration, Instant};

/// Timing samples for one benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label, e.g. `table2_blas/gemv`.
    pub name: String,
    /// One duration per sample (unsorted).
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// Smallest sample — the least-noise estimate of the true cost.
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or(Duration::ZERO)
    }

    /// Median sample.
    pub fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2]
    }

    /// Mean sample.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    /// One row of the standard output format.
    pub fn report(&self) -> String {
        format!(
            "{:<40} min {:>10.3?}   median {:>10.3?}   mean {:>10.3?}   ({} samples)",
            self.name,
            self.min(),
            self.median(),
            self.mean(),
            self.samples.len()
        )
    }
}

/// Run `f` once as a warm-up, then `samples` more times, timing each run.
///
/// The closure's return value is passed to `std::hint::black_box` so the
/// optimizer cannot delete the benchmarked work.
pub fn bench<T>(name: impl Into<String>, samples: usize, mut f: impl FnMut() -> T) -> Measurement {
    std::hint::black_box(f());
    let samples = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    Measurement {
        name: name.into(),
        samples,
    }
}

/// Run [`bench()`] and print the measurement immediately (the usual flow
/// in the bench binaries).
pub fn bench_and_report<T>(name: impl Into<String>, samples: usize, f: impl FnMut() -> T) -> Measurement {
    let m = bench(name, samples, f);
    println!("{}", m.report());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_over_known_samples() {
        let m = Measurement {
            name: "t".into(),
            samples: vec![
                Duration::from_millis(3),
                Duration::from_millis(1),
                Duration::from_millis(2),
            ],
        };
        assert_eq!(m.min(), Duration::from_millis(1));
        assert_eq!(m.median(), Duration::from_millis(2));
        assert_eq!(m.mean(), Duration::from_millis(2));
    }

    #[test]
    fn bench_collects_requested_samples() {
        let mut calls = 0;
        let m = bench("noop", 5, || calls += 1);
        assert_eq!(m.samples.len(), 5);
        assert_eq!(calls, 6, "warm-up plus five samples");
    }
}
