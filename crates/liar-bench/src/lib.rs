//! The evaluation harness: code that regenerates every table and figure of
//! the paper's §VI (see ARCHITECTURE.md for the experiment index).
//!
//! * [`harness`] — saturation experiments: table I (kernel inventory),
//!   tables II–III (solutions found per kernel per target).
//! * [`figures`] — figure experiments: fig. 4 (solutions over time),
//!   fig. 5 (coverage over time), fig. 6 (gemv run times per step),
//!   fig. 7 (run-time speedups across all kernels).
//! * [`timing`] — the minimal wall-clock harness the bench binaries use
//!   (the workspace builds offline, so no criterion).
//! * [`diff`] — the bench regression sentry: compares fresh
//!   `BENCH_*.json` documents against committed baselines with
//!   per-metric policies (the `bench-diff` binary).

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod diff;
pub mod figures;
pub mod harness;
pub mod timing;
