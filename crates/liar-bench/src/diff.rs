//! The bench regression sentry: compare freshly generated
//! `BENCH_*.json` documents against committed baselines and flag
//! regressions metric-by-metric.
//!
//! Every leaf in a bench document gets a **policy** chosen by its key
//! ([`policy_for`]): wall-clock metrics may only grow so much
//! (`*_s`/`*_ms`, ratio + absolute-floor thresholds so nanobenchmark
//! noise never trips the gate), overhead ratios may only drift up by an
//! additive slack, speedups may only shrink so much, `gate_*` booleans
//! must hold, and `solution` strings — the semantic output of the
//! optimizer — must match exactly. Everything else (candidate counts,
//! node counts, costs within tolerance) is reported as drift but never
//! fails the gate.
//!
//! The entry point is [`diff_docs`]; the `bench-diff` binary wraps it
//! over the five benched documents and emits a machine-readable verdict
//! (see `docs/OBSERVABILITY.md`).

use liar_serve::json::Json;

/// How a metric is judged. Chosen per leaf by [`policy_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Wall-clock time (`*_s`, `*_ms`): regression when the current
    /// value exceeds `baseline × time_ratio` **and** the growth exceeds
    /// the absolute floor for the unit (noise guard for sub-millisecond
    /// benches).
    TimeLowerBetter,
    /// An overhead ratio near 1.0 (`*overhead*`): regression when the
    /// current value exceeds `baseline + ratio_slack`.
    RatioLowerBetter,
    /// A speedup (`*speedup*`): regression when the current value drops
    /// below `baseline ÷ time_ratio`.
    HigherBetter,
    /// A `gate_*` boolean: regression whenever it is `false` in the
    /// current document (the gate itself already encodes its tolerance).
    GateMustHold,
    /// A `solution` string: the optimizer's semantic answer; any change
    /// is a regression.
    SolutionExact,
    /// Tracked for drift reporting only; never fails the gate.
    Informational,
}

/// The per-metric thresholds the sentry applies.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Multiplicative budget for times (and the shrink budget for
    /// speedups). Default 1.5: a metric may grow 50% before failing.
    pub time_ratio: f64,
    /// Absolute growth floor for times, in **seconds** (`*_ms` leaves
    /// use `1000 ×` this). Growth below the floor never fails, however
    /// large the ratio — sub-millisecond benches are noise-dominated.
    pub time_floor_s: f64,
    /// Additive budget for overhead ratios. Default 0.25: an overhead
    /// of 1.05 may drift to 1.30 before failing.
    pub ratio_slack: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            time_ratio: 1.5,
            time_floor_s: 0.002,
            ratio_slack: 0.25,
        }
    }
}

/// The policy for a leaf, chosen by its object key.
pub fn policy_for(key: &str) -> Policy {
    if key.starts_with("gate_") {
        Policy::GateMustHold
    } else if key == "solution" {
        Policy::SolutionExact
    } else if key.ends_with("_s") || key.ends_with("_ms") {
        Policy::TimeLowerBetter
    } else if key.contains("overhead") {
        Policy::RatioLowerBetter
    } else if key.contains("speedup") {
        Policy::HigherBetter
    } else {
        Policy::Informational
    }
}

/// One compared metric that moved (or went missing).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which bench document (`ematch`, `extract`, ...).
    pub bench: String,
    /// Dotted path to the leaf, rows keyed by identity — e.g.
    /// `kernels[gemv].cold_ms`.
    pub path: String,
    /// The committed value, rendered.
    pub baseline: String,
    /// The freshly measured value, rendered.
    pub current: String,
    /// Human-readable judgement (`2.10x over the 1.50x budget`, ...).
    pub note: String,
    /// `true` when this finding fails the gate.
    pub regression: bool,
}

/// The sentry's result over one pair of documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Metrics that moved past their policy's threshold (gate failures).
    pub regressions: Vec<Finding>,
    /// Metrics that moved within budget (reported, never failing).
    pub drift: Vec<Finding>,
    /// Leaves compared.
    pub compared: usize,
}

impl DiffReport {
    /// `true` when no metric failed its policy.
    pub fn pass(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: DiffReport) {
        self.regressions.extend(other.regressions);
        self.drift.extend(other.drift);
        self.compared += other.compared;
    }
}

/// Keys that identify a row inside a bench array, in priority order.
/// Rows are paired by identity, not index, so reordering a kernel list
/// is not a regression.
const IDENTITY_KEYS: [&str; 4] = ["kernel", "target", "rule", "name"];

fn identity(j: &Json) -> Option<String> {
    let parts: Vec<&str> = IDENTITY_KEYS
        .iter()
        .filter_map(|k| j.get(k).and_then(Json::as_str))
        .collect();
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("/"))
    }
}

fn render(j: &Json) -> String {
    match j {
        Json::Num(n) => format!("{n}"),
        Json::Str(s) => s.clone(),
        Json::Bool(b) => format!("{b}"),
        other => other.to_json(),
    }
}

/// Compare one freshly generated bench document against its committed
/// baseline. `bench` labels the findings (e.g. `"serve"`).
pub fn diff_docs(bench: &str, baseline: &Json, current: &Json, th: &Thresholds) -> DiffReport {
    let mut report = DiffReport::default();
    walk(bench, "", None, baseline, current, th, &mut report);
    report
}

fn push(
    report: &mut DiffReport,
    bench: &str,
    path: &str,
    baseline: &Json,
    current: Option<&Json>,
    note: String,
    regression: bool,
) {
    let finding = Finding {
        bench: bench.to_string(),
        path: path.to_string(),
        baseline: render(baseline),
        current: current.map(render).unwrap_or_else(|| "(missing)".to_string()),
        note,
        regression,
    };
    if regression {
        report.regressions.push(finding);
    } else {
        report.drift.push(finding);
    }
}

fn walk(
    bench: &str,
    path: &str,
    key: Option<&str>,
    baseline: &Json,
    current: &Json,
    th: &Thresholds,
    report: &mut DiffReport,
) {
    match (baseline, current) {
        (Json::Obj(pairs), Json::Obj(_)) => {
            for (k, base_v) in pairs {
                let child = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                match current.get(k) {
                    Some(cur_v) => walk(bench, &child, Some(k), base_v, cur_v, th, report),
                    None => push(
                        report,
                        bench,
                        &child,
                        base_v,
                        None,
                        "metric missing from the current document".to_string(),
                        true,
                    ),
                }
            }
            // Keys only in `current` are new metrics — fine.
        }
        (Json::Arr(base_items), Json::Arr(cur_items)) => {
            let by_identity = base_items.iter().all(|i| identity(i).is_some())
                && cur_items.iter().all(|i| identity(i).is_some());
            if by_identity {
                for base_item in base_items {
                    let id = identity(base_item).unwrap();
                    let child = format!("{path}[{id}]");
                    match cur_items.iter().find(|c| identity(c).as_deref() == Some(&id)) {
                        Some(cur_item) => walk(bench, &child, None, base_item, cur_item, th, report),
                        None => push(
                            report,
                            bench,
                            &child,
                            base_item,
                            None,
                            "row missing from the current document".to_string(),
                            true,
                        ),
                    }
                }
            } else {
                for (i, base_item) in base_items.iter().enumerate() {
                    let child = format!("{path}[{i}]");
                    match cur_items.get(i) {
                        Some(cur_item) => walk(bench, &child, None, base_item, cur_item, th, report),
                        None => push(
                            report,
                            bench,
                            &child,
                            base_item,
                            None,
                            "row missing from the current document".to_string(),
                            true,
                        ),
                    }
                }
            }
        }
        (Json::Num(b), Json::Num(c)) => {
            report.compared += 1;
            judge_number(bench, path, key, *b, *c, th, report);
        }
        (Json::Str(b), Json::Str(c)) => {
            report.compared += 1;
            if b != c {
                let exact = key.map(policy_for) == Some(Policy::SolutionExact);
                push(
                    report,
                    bench,
                    path,
                    baseline,
                    Some(current),
                    if exact {
                        "solution changed — semantic regression".to_string()
                    } else {
                        "string changed".to_string()
                    },
                    exact,
                );
            }
        }
        (Json::Bool(b), Json::Bool(c)) => {
            report.compared += 1;
            let gated = key.map(policy_for) == Some(Policy::GateMustHold);
            if gated && !c {
                push(
                    report,
                    bench,
                    path,
                    baseline,
                    Some(current),
                    "gate does not hold".to_string(),
                    true,
                );
            } else if b != c {
                push(report, bench, path, baseline, Some(current), "flag changed".to_string(), false);
            }
        }
        _ => push(
            report,
            bench,
            path,
            baseline,
            Some(current),
            "value changed type".to_string(),
            true,
        ),
    }
}

fn judge_number(
    bench: &str,
    path: &str,
    key: Option<&str>,
    b: f64,
    c: f64,
    th: &Thresholds,
    report: &mut DiffReport,
) {
    let key = key.unwrap_or("");
    let policy = policy_for(key);
    let (regression, note) = match policy {
        Policy::TimeLowerBetter => {
            let floor = if key.ends_with("_ms") { th.time_floor_s * 1000.0 } else { th.time_floor_s };
            let over_ratio = b > 0.0 && c > b * th.time_ratio;
            let over_floor = c - b > floor;
            if over_ratio && over_floor {
                (true, format!("{:.2}x over the {:.2}x budget", c / b, th.time_ratio))
            } else if c != b {
                (false, format!("{:+.1}% within budget", (c / b - 1.0) * 100.0))
            } else {
                return;
            }
        }
        Policy::RatioLowerBetter => {
            if c > b + th.ratio_slack {
                (true, format!("overhead rose {:.3} past the +{:.2} slack", c - b, th.ratio_slack))
            } else if c != b {
                (false, format!("{:+.3} within slack", c - b))
            } else {
                return;
            }
        }
        Policy::HigherBetter => {
            if b > 0.0 && c < b / th.time_ratio {
                (true, format!("shrank to {:.2}x of baseline", c / b))
            } else if c != b {
                (false, format!("{:+.1}% within budget", (c / b - 1.0) * 100.0))
            } else {
                return;
            }
        }
        // Gates and solutions are booleans/strings; a number under
        // those keys is a schema change.
        Policy::GateMustHold | Policy::SolutionExact => {
            (true, "value changed type".to_string())
        }
        Policy::Informational => {
            if c != b {
                (false, "drifted (informational)".to_string())
            } else {
                return;
            }
        }
    };
    push(
        report,
        bench,
        path,
        &Json::Num(b),
        Some(&Json::Num(c)),
        note,
        regression,
    );
}

/// Render a merged report as the machine-readable verdict document the
/// CI gate archives (stable key order).
pub fn verdict_json(report: &DiffReport, thresholds: &Thresholds) -> Json {
    let finding = |f: &Finding| {
        Json::obj([
            ("bench", Json::Str(f.bench.clone())),
            ("path", Json::Str(f.path.clone())),
            ("baseline", Json::Str(f.baseline.clone())),
            ("current", Json::Str(f.current.clone())),
            ("note", Json::Str(f.note.clone())),
        ])
    };
    Json::obj([
        (
            "verdict",
            Json::Str(if report.pass() { "pass" } else { "fail" }.to_string()),
        ),
        ("compared", Json::Num(report.compared as f64)),
        (
            "thresholds",
            Json::obj([
                ("time_ratio", Json::Num(thresholds.time_ratio)),
                ("time_floor_s", Json::Num(thresholds.time_floor_s)),
                ("ratio_slack", Json::Num(thresholds.ratio_slack)),
            ]),
        ),
        (
            "regressions",
            Json::Arr(report.regressions.iter().map(finding).collect()),
        ),
        ("drift", Json::Arr(report.drift.iter().map(finding).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_serve::json::parse;

    const BASE: &str = r#"{
        "bench": "serve",
        "workers": 2,
        "kernels": [
            {"kernel": "vsum", "cold_ms": 8.0, "warm_p50_ms": 0.5, "cache_hit_speedup": 16.0, "solution": "1 × dot"},
            {"kernel": "gemv", "cold_ms": 300.0, "warm_p50_ms": 0.6, "cache_hit_speedup": 500.0, "solution": "1 × gemv"}
        ],
        "gate_2pct_pass": true,
        "aggregate_enabled_overhead": 1.05
    }"#;

    #[test]
    fn identical_documents_pass() {
        let base = parse(BASE).unwrap();
        let report = diff_docs("serve", &base, &base, &Thresholds::default());
        assert!(report.pass());
        assert!(report.drift.is_empty());
        assert!(report.compared > 0);
    }

    #[test]
    fn noise_within_budget_is_drift_not_regression() {
        let base = parse(BASE).unwrap();
        let cur = parse(&BASE.replace("\"cold_ms\": 8.0", "\"cold_ms\": 9.1")).unwrap();
        let report = diff_docs("serve", &base, &cur, &Thresholds::default());
        assert!(report.pass(), "{:?}", report.regressions);
        assert_eq!(report.drift.len(), 1);
    }

    #[test]
    fn sub_floor_blowup_on_a_tiny_metric_passes() {
        // 0.5ms → 1.9ms is 3.8x but under the 2ms absolute floor: noise.
        let base = parse(BASE).unwrap();
        let cur = parse(&BASE.replace("\"warm_p50_ms\": 0.5", "\"warm_p50_ms\": 1.9")).unwrap();
        assert!(diff_docs("serve", &base, &cur, &Thresholds::default()).pass());
    }

    #[test]
    fn seeded_time_regression_fails() {
        let base = parse(BASE).unwrap();
        let cur = parse(&BASE.replace("\"cold_ms\": 300.0", "\"cold_ms\": 600.0")).unwrap();
        let report = diff_docs("serve", &base, &cur, &Thresholds::default());
        assert!(!report.pass());
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].path, "kernels[gemv].cold_ms");
    }

    #[test]
    fn gate_flip_and_solution_change_fail() {
        let base = parse(BASE).unwrap();
        let cur = parse(
            &BASE
                .replace("\"gate_2pct_pass\": true", "\"gate_2pct_pass\": false")
                .replace("1 × dot", "2 × axpy"),
        )
        .unwrap();
        let report = diff_docs("serve", &base, &cur, &Thresholds::default());
        let paths: Vec<&str> = report.regressions.iter().map(|f| f.path.as_str()).collect();
        assert!(paths.contains(&"gate_2pct_pass"), "{paths:?}");
        assert!(paths.contains(&"kernels[vsum].solution"), "{paths:?}");
    }

    #[test]
    fn speedup_shrink_and_overhead_rise_fail() {
        let base = parse(BASE).unwrap();
        let cur = parse(
            &BASE
                .replace("\"cache_hit_speedup\": 500.0", "\"cache_hit_speedup\": 100.0")
                .replace(
                    "\"aggregate_enabled_overhead\": 1.05",
                    "\"aggregate_enabled_overhead\": 1.45",
                ),
        )
        .unwrap();
        let report = diff_docs("serve", &base, &cur, &Thresholds::default());
        assert_eq!(report.regressions.len(), 2, "{:?}", report.regressions);
    }

    #[test]
    fn missing_row_and_metric_fail_while_new_ones_pass() {
        let base = parse(BASE).unwrap();
        // Current drops the gemv row and the gate, adds a new metric.
        let cur = parse(r#"{
            "bench": "serve",
            "workers": 2,
            "brand_new_counter": 7,
            "kernels": [
                {"kernel": "vsum", "cold_ms": 8.0, "warm_p50_ms": 0.5, "cache_hit_speedup": 16.0, "solution": "1 × dot"}
            ],
            "aggregate_enabled_overhead": 1.05
        }"#).unwrap();
        let report = diff_docs("serve", &base, &cur, &Thresholds::default());
        let paths: Vec<&str> = report.regressions.iter().map(|f| f.path.as_str()).collect();
        assert!(paths.contains(&"kernels[gemv]"), "{paths:?}");
        assert!(paths.contains(&"gate_2pct_pass"), "{paths:?}");
        assert_eq!(report.regressions.len(), 2);
    }

    #[test]
    fn rows_pair_by_identity_not_index() {
        let base = parse(BASE).unwrap();
        // Same rows, reversed order: no findings at all.
        let cur = parse(r#"{
            "bench": "serve",
            "workers": 2,
            "kernels": [
                {"kernel": "gemv", "cold_ms": 300.0, "warm_p50_ms": 0.6, "cache_hit_speedup": 500.0, "solution": "1 × gemv"},
                {"kernel": "vsum", "cold_ms": 8.0, "warm_p50_ms": 0.5, "cache_hit_speedup": 16.0, "solution": "1 × dot"}
            ],
            "gate_2pct_pass": true,
            "aggregate_enabled_overhead": 1.05
        }"#).unwrap();
        let report = diff_docs("serve", &base, &cur, &Thresholds::default());
        assert!(report.pass());
        assert!(report.drift.is_empty());
    }

    #[test]
    fn verdict_json_is_stable_and_machine_readable() {
        let base = parse(BASE).unwrap();
        let cur = parse(&BASE.replace("\"cold_ms\": 300.0", "\"cold_ms\": 600.0")).unwrap();
        let report = diff_docs("serve", &base, &cur, &Thresholds::default());
        let v = verdict_json(&report, &Thresholds::default());
        assert_eq!(v.get("verdict").and_then(Json::as_str), Some("fail"));
        let text = v.to_json();
        // Round-trips through the parser.
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.starts_with("{\"verdict\":\"fail\",\"compared\":"));
    }
}
