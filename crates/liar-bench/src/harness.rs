//! Saturation experiments: the solutions LIAR finds per kernel and target
//! (tables I–III of the paper).

use liar_core::{Liar, OptimizationReport, Target};
use liar_kernels::Kernel;

/// Saturation-step limit per kernel. The paper's step-limited artifact runs
/// 5–11 steps per kernel; large kernels get fewer steps here to keep table
/// regeneration interactive.
pub fn step_limit(kernel: Kernel) -> usize {
    match kernel {
        Kernel::TwoMm | Kernel::Gemver => 6,
        _ => 8,
    }
}

/// Configure the pipeline the way the tables are generated: step-limited,
/// with a node budget that keeps the search near the paper's e-graph sizes.
pub fn pipeline_for(kernel: Kernel, target: Target) -> Liar {
    Liar::new(target)
        .with_iter_limit(step_limit(kernel))
        .with_node_limit(150_000)
        .with_match_limit(30_000)
}

/// Optimize one kernel for one target with the table settings.
pub fn optimize_kernel(kernel: Kernel, target: Target) -> OptimizationReport {
    let expr = kernel.expr(kernel.search_size());
    pipeline_for(kernel, target).optimize(&expr)
}

/// One row of table II / table III.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// The kernel.
    pub kernel: Kernel,
    /// Library calls in the final solution, paper-style (`1 × gemv + …`).
    pub solution: String,
    /// Saturation steps run.
    pub steps: usize,
    /// Step at which the final solution first appeared.
    pub converged_at: usize,
    /// Unique e-nodes at the last step.
    pub enodes: usize,
    /// Final extraction cost.
    pub cost: f64,
}

/// Generate the rows of table II (BLAS) or table III (PyTorch).
pub fn table_rows(target: Target) -> Vec<TableRow> {
    Kernel::ALL
        .iter()
        .map(|&kernel| {
            let report = optimize_kernel(kernel, target);
            let best = report.best();
            TableRow {
                kernel,
                solution: best.solution_summary(),
                steps: best.step,
                converged_at: report.convergence_step(),
                enodes: best.n_nodes,
                cost: best.cost,
            }
        })
        .collect()
}

/// Render table I (the kernel inventory).
pub fn render_table1() -> String {
    let mut out = String::from("| Kernel | Suite | Description |\n|---|---|---|\n");
    for k in Kernel::ALL {
        out.push_str(&format!(
            "| {} | {} | {} |\n",
            k.name(),
            k.suite(),
            k.description()
        ));
    }
    out
}

/// Render table II/III rows as markdown.
pub fn render_table(target: Target, rows: &[TableRow]) -> String {
    let mut out = format!(
        "Solutions found when targeting {target} (paper table {}).\n\n",
        match target {
            Target::Blas => "II",
            Target::Torch => "III",
            Target::PureC => "—",
        }
    );
    out.push_str("| Kernel | Solution | Steps | e-Nodes |\n|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2e} |\n",
            r.kernel.name(),
            r.solution,
            r.steps,
            r.enodes as f64
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vsum_row_matches_paper_shape() {
        let report = optimize_kernel(Kernel::Vsum, Target::Blas);
        assert_eq!(report.best().solution_summary(), "1 × dot");
        let report = optimize_kernel(Kernel::Vsum, Target::Torch);
        assert_eq!(report.best().solution_summary(), "1 × sum");
    }

    #[test]
    fn table1_lists_all_kernels() {
        let t = render_table1();
        for k in Kernel::ALL {
            assert!(t.contains(k.name()), "missing {k}");
        }
    }
}
