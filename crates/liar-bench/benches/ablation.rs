//! Ablation: how sensitive is idiom selection to the cost model's
//! "semi-arbitrarily chosen" discount factors (paper listings 7–8)?
//!
//! Sweeps a scale on the per-call discount term and benchmarks the full
//! pipeline; the interesting output is printed once per scale: which
//! solutions survive as library calls get less attractive.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use liar_core::{Liar, Target};
use liar_kernels::Kernel;

fn bench_discount_ablation(c: &mut Criterion) {
    let kernel = Kernel::Gemv;
    let expr = kernel.expr(kernel.search_size());
    let mut group = c.benchmark_group("ablation_discount_scale");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for scale in [0.5, 1.0, 2.0, 20.0] {
        // Report the solution once, outside the timed loop.
        let report = Liar::new(Target::Blas)
            .with_iter_limit(6)
            .with_discount_scale(scale)
            .optimize(&expr);
        println!(
            "discount scale {scale:>4}: gemv solution = {}",
            report.best().solution_summary()
        );
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| {
                Liar::new(Target::Blas)
                    .with_iter_limit(6)
                    .with_discount_scale(s)
                    .optimize(&expr)
                    .best()
                    .cost
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discount_ablation);
criterion_main!(benches);
