//! Ablation: how sensitive is idiom selection to the cost model's
//! "semi-arbitrarily chosen" discount factors (paper listings 7–8)?
//!
//! Sweeps a scale on the per-call discount term and benchmarks the full
//! pipeline; the interesting output is printed once per scale: which
//! solutions survive as library calls get less attractive.
//!
//! Run with `cargo bench --bench ablation`. Plain `main` + the in-crate
//! [`liar_bench::timing`] harness (no criterion; the workspace builds
//! offline).

use liar_bench::timing;
use liar_core::{Liar, Target};
use liar_kernels::Kernel;

const SAMPLES: usize = 3;

fn main() {
    let kernel = Kernel::Gemv;
    let expr = kernel.expr(kernel.search_size());
    println!("== ablation_discount_scale ==");
    for scale in [0.5, 1.0, 2.0, 20.0] {
        // Report the solution once, outside the timed loop.
        let report = Liar::new(Target::Blas)
            .with_iter_limit(6)
            .with_discount_scale(scale)
            .optimize(&expr);
        println!(
            "discount scale {scale:>4}: gemv solution = {}",
            report.best().solution_summary()
        );
        timing::bench_and_report(format!("ablation/discount_{scale}"), SAMPLES, || {
            Liar::new(Target::Blas)
                .with_iter_limit(6)
                .with_discount_scale(scale)
                .optimize(&expr)
                .best()
                .cost
        });
    }
}
