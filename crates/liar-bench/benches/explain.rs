//! Proof-production benchmark: what explanations cost, and what the
//! certificates look like, on the PolyBench kernels.
//!
//! For each kernel × library target:
//!
//! * **saturation overhead** — the same pipeline run with explanations
//!   off vs on (median wall-clock of several runs). The on-run pays the
//!   provenance forest (one record per issued id, one tagged edge per
//!   union); the off-run must pay nothing.
//! * **proof production + replay** — `explain_equivalence` from the
//!   source kernel to the extracted solution: proof length (rewrite
//!   steps), production time, and the time `Explanation::check` takes to
//!   replay the certificate against the rule set.
//! * **parity assertions** — the explained run must find the same
//!   lifting (same library calls and cost) as the fast path, and every
//!   proof must replay clean; the bench fails otherwise.
//!
//! Results are printed and written to `BENCH_explain.json` at the repo
//! root; CI runs this bench as a smoke test of the overhead direction
//! and the replay assertions.

use std::time::{Duration, Instant};

use liar_bench::harness;
use liar_core::rules::{rules_for, RuleConfig};
use liar_core::Target;
use liar_kernels::Kernel;

const KERNELS: [Kernel; 4] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax, Kernel::Mvt];
const TARGETS: [Target; 2] = [Target::Blas, Target::Torch];
const SAMPLES: usize = 3;

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

struct Row {
    kernel: &'static str,
    target: &'static str,
    off_s: f64,
    on_s: f64,
    overhead: f64,
    proof_steps: usize,
    explain_s: f64,
    check_s: f64,
    solution: String,
}

fn main() {
    println!("== explain (saturation overhead of proof production + certificate replay) ==");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host hardware threads: {hw}");

    let mut rows = Vec::new();
    for kernel in KERNELS {
        let expr = kernel.expr(kernel.search_size());
        for target in TARGETS {
            let fast = harness::pipeline_for(kernel, target);
            let explained = harness::pipeline_for(kernel, target).with_explanations(true);

            // Parity first: the explained run finds the same lifting at
            // the same cost. (Deliberately *not* expression equality —
            // `Liar::with_explanations` documents that the explained run
            // is not guaranteed bit-identical, only equally good.)
            let fast_report = fast.optimize(&expr);
            let (on_report, proof) = explained.optimize_explained(&expr);
            assert_eq!(
                fast_report.best().lib_calls,
                on_report.best().lib_calls,
                "{kernel}/{target}: explained run found a different lifting"
            );
            assert_eq!(fast_report.best().cost, on_report.best().cost);

            // …and its certificate replays.
            let rules = rules_for(target, &RuleConfig::default());
            let check_start = Instant::now();
            proof
                .check(&rules)
                .unwrap_or_else(|e| panic!("{kernel}/{target}: proof failed to replay: {e}"));
            let check_s = check_start.elapsed().as_secs_f64();

            // Saturation overhead: off vs on, median of SAMPLES (one
            // warm-up each, already done above).
            let off = median(
                (0..SAMPLES)
                    .map(|_| {
                        let start = Instant::now();
                        std::hint::black_box(fast.optimize(&expr));
                        start.elapsed()
                    })
                    .collect(),
            );
            let on = median(
                (0..SAMPLES)
                    .map(|_| {
                        let start = Instant::now();
                        std::hint::black_box(explained.optimize(&expr));
                        start.elapsed()
                    })
                    .collect(),
            );

            // Proof production alone (forest walk + term materialization),
            // on a fresh explained run's e-graph.
            let (report, mut egraph) = explained.optimize_with_egraph(&expr);
            let explain_start = Instant::now();
            let proof2 =
                std::hint::black_box(egraph.explain_equivalence(&expr, &report.best().best));
            let explain_s = explain_start.elapsed().as_secs_f64();
            assert_eq!(proof2.len(), proof.len(), "proof length must be stable");

            let overhead = on.as_secs_f64() / off.as_secs_f64().max(1e-9);
            println!(
                "{:<32} off {:>9.3?}   on {:>9.3?}   overhead {:>5.2}x   proof {:>3} steps   \
                 explain {:>9.6}s   check {:>9.6}s   {}",
                format!("explain/{}/{}", kernel.name(), target.name()),
                off,
                on,
                overhead,
                proof.len(),
                explain_s,
                check_s,
                on_report.best().solution_summary(),
            );
            rows.push(Row {
                kernel: kernel.name(),
                target: target.name(),
                off_s: off.as_secs_f64(),
                on_s: on.as_secs_f64(),
                overhead,
                proof_steps: proof.len(),
                explain_s,
                check_s,
                solution: on_report.best().solution_summary(),
            });
        }
    }

    // Hand-rolled JSON (the workspace is dependency-free offline).
    let mut json = String::from("{\n  \"bench\": \"explain\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"target\": \"{}\", \"off_s\": {:.6}, \"on_s\": {:.6}, \
             \"overhead\": {:.3}, \"proof_steps\": {}, \"explain_s\": {:.6}, \
             \"check_s\": {:.6}, \"solution\": \"{}\"}}{}\n",
            r.kernel,
            r.target,
            r.off_s,
            r.on_s,
            r.overhead,
            r.proof_steps,
            r.explain_s,
            r.check_s,
            r.solution.replace('"', "'"),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explain.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let mean_overhead: f64 = rows.iter().map(|r| r.overhead).sum::<f64>() / rows.len() as f64;
    let max_steps = rows.iter().map(|r| r.proof_steps).max().unwrap_or(0);
    println!(
        "mean saturation overhead {:.2}x, longest proof {} steps",
        mean_overhead, max_steps
    );
}
