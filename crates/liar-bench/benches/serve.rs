//! Serve benchmark: loopback throughput and latency of the `liar-serve`
//! daemon, cold (cache misses) versus warm (content-addressed cache
//! hits), on a PolyBench request mix.
//!
//! One in-process [`Server`] on an ephemeral loopback port; a cold pass
//! submits each kernel once (populating the saturation cache), then
//! several client threads replay the mix concurrently. Reported:
//!
//! * per-kernel cold latency vs warm p50/p95 latency and the resulting
//!   **cache-hit speedup** (the serving win this subsystem is about);
//! * overall warm p50/p95 latency and throughput (requests/second);
//! * correctness riders: every warm response must be served from the
//!   cache (`hit`/`coalesced`) and carry the same solutions as the cold
//!   response for that kernel;
//! * **durability columns**: the first server runs with a snapshot
//!   store, so a second server booted on the same directory (fresh
//!   in-memory cache — a simulated restart) answers each kernel by
//!   restore + extraction: `cold_boot_ms` (saturate from scratch) vs
//!   `warm_boot_ms` (`"cache":"warm"`, zero saturation steps, identical
//!   solutions), plus `warm_start_saturation_ms` — resuming saturation
//!   in-process from the stored snapshot with the restored classes
//!   pre-sealed ([`liar_core::Liar::optimize_multi_warm`]), budgeted at
//!   one re-search step: the marginal cost of *continuing* from the
//!   stored graph (restore + frontier confirmation + extraction) rather
//!   than replaying it.
//!
//! Results are printed and written to `BENCH_serve.json` at the repo
//! root; CI runs this bench and uploads the JSON as an artifact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use liar_core::{Liar, MachineProfile, SnapshotStore, Target};
use liar_kernels::Kernel;
use liar_serve::{Client, OptimizeRequest, Server, ServerConfig};

const KERNELS: [Kernel; 4] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax, Kernel::Mvt];
const STEPS: usize = 6;
const CLIENTS: usize = 4;
const ROUNDS: usize = 5;

fn request_for(program: &str) -> OptimizeRequest {
    let mut req = OptimizeRequest::new(program);
    req.steps = Some(STEPS);
    req
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct Row {
    kernel: &'static str,
    cold_ms: f64,
    warm_p50_ms: f64,
    warm_p95_ms: f64,
    speedup: f64,
    warm_boot_ms: f64,
    warm_start_ms: f64,
}

fn main() {
    println!("== serve (loopback daemon: cold misses vs content-addressed cache hits) ==");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host hardware threads: {hw}   clients: {CLIENTS}   rounds: {ROUNDS}");

    // A scratch warm-store directory: the cold pass doubles as the
    // cold-boot measurement and populates the store for the restart.
    let warm_dir = std::env::temp_dir().join(format!("liar-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&warm_dir);

    let server = Server::start(ServerConfig {
        workers: 2,
        warm_dir: Some(warm_dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr();

    let programs: Vec<(&'static str, String)> = KERNELS
        .iter()
        .map(|k| (k.name(), k.expr(k.search_size()).to_string()))
        .collect();

    // Cold pass: one miss per kernel, timed client-side.
    let mut client = Client::connect(addr).expect("connect");
    let mut cold = Vec::new();
    for (name, program) in &programs {
        let start = Instant::now();
        let resp = client.optimize(request_for(program)).expect("optimize");
        let elapsed = start.elapsed();
        assert_eq!(resp.cache, "miss", "{name}: first submission must miss");
        cold.push((*name, elapsed, resp.solutions));
    }

    // Warm pass: CLIENTS threads × ROUNDS rounds over the same mix.
    let programs = Arc::new(programs);
    let expected: Arc<Vec<_>> = Arc::new(cold.iter().map(|(n, _, s)| (*n, s.clone())).collect());
    let wall = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let programs = Arc::clone(&programs);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut samples: Vec<(usize, Duration)> = Vec::new();
                for r in 0..ROUNDS {
                    for i in 0..programs.len() {
                        let i = (i + c + r) % programs.len();
                        let start = Instant::now();
                        let resp = client
                            .optimize(request_for(&programs[i].1))
                            .expect("optimize");
                        samples.push((i, start.elapsed()));
                        assert!(
                            resp.cache == "hit" || resp.cache == "coalesced",
                            "{}: warm submission was {}",
                            programs[i].0,
                            resp.cache
                        );
                        assert_eq!(
                            resp.solutions, expected[i].1,
                            "{}: warm solutions diverged",
                            programs[i].0
                        );
                    }
                }
                samples
            })
        })
        .collect();
    let mut warm: Vec<Vec<Duration>> = vec![Vec::new(); programs.len()];
    let mut all_warm: Vec<Duration> = Vec::new();
    for h in handles {
        for (i, d) in h.join().expect("client thread") {
            warm[i].push(d);
            all_warm.push(d);
        }
    }
    let warm_wall = wall.elapsed();

    // Warm boot: a second server on the same store directory with a
    // fresh in-memory cache — a simulated restart. First submissions
    // must restore from disk ("warm"), run zero saturation steps, and
    // answer with the cold run's exact solutions.
    let restarted = Server::start(ServerConfig {
        workers: 2,
        warm_dir: Some(warm_dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind loopback (restart)");
    let mut client = Client::connect(restarted.local_addr()).expect("connect (restart)");
    let mut warm_boot = Vec::new();
    for (i, (name, program)) in programs.iter().enumerate() {
        let start = Instant::now();
        let resp = client.optimize(request_for(program)).expect("optimize (restart)");
        let elapsed = start.elapsed();
        assert_eq!(resp.cache, "warm", "{name}: restart must answer from the store");
        assert_eq!(resp.saturation_steps, 0, "{name}: warm answers run zero steps");
        assert_eq!(
            resp.solutions, expected[i].1,
            "{name}: warm-boot solutions diverged"
        );
        warm_boot.push(elapsed);
    }
    restarted.shutdown();

    // Warm-start saturation: resume in-process from the stored snapshot
    // (restored classes pre-sealed, only new work hits the frontier)
    // instead of extraction-only replay. The fingerprint pipeline
    // mirrors the server's job configuration so the store lookup hits;
    // the resume itself is budgeted at one re-search step so the column
    // measures the marginal cost of continuing from the stored graph,
    // not the cost of growing it a further `STEPS` iterations.
    let store = Arc::new(SnapshotStore::open(&warm_dir).expect("open store"));
    let targets: Vec<Target> = Target::ALL.to_vec();
    let mut warm_start = Vec::new();
    for (name, program) in programs.iter() {
        let pipeline = Liar::new(targets[0])
            .with_iter_limit(STEPS)
            .with_node_limit(ServerConfig::default().default_node_limit)
            .with_profiles(vec![MachineProfile::default()]);
        let expr = program.parse().expect("parse kernel");
        let fp = pipeline.request_fingerprint(&expr, &targets, &[1.0]);
        let (_, bytes) = store.load(fp).unwrap_or_else(|| panic!("{name}: snapshot not stored"));
        let resume = pipeline.clone().with_iter_limit(1);
        let start = Instant::now();
        resume
            .optimize_multi_warm(&bytes, &expr, &targets, &[1.0])
            .expect("warm resume");
        warm_start.push(start.elapsed());
    }

    let mut rows = Vec::new();
    for (i, (name, cold_time, _)) in cold.iter().enumerate() {
        let mut sorted = warm[i].clone();
        sorted.sort();
        let p50 = percentile(&sorted, 0.50);
        let p95 = percentile(&sorted, 0.95);
        let speedup = cold_time.as_secs_f64() / p50.as_secs_f64().max(1e-9);
        println!(
            "serve/{:<12} cold {:>10.3?}   warm p50 {:>10.3?}   p95 {:>10.3?}   hit speedup {:>7.1}x   warm boot {:>10.3?}   warm resume {:>10.3?}",
            name, cold_time, p50, p95, speedup, warm_boot[i], warm_start[i]
        );
        rows.push(Row {
            kernel: name,
            cold_ms: cold_time.as_secs_f64() * 1e3,
            warm_p50_ms: p50.as_secs_f64() * 1e3,
            warm_p95_ms: p95.as_secs_f64() * 1e3,
            speedup,
            warm_boot_ms: warm_boot[i].as_secs_f64() * 1e3,
            warm_start_ms: warm_start[i].as_secs_f64() * 1e3,
        });
    }

    all_warm.sort();
    let overall_p50 = percentile(&all_warm, 0.50);
    let overall_p95 = percentile(&all_warm, 0.95);
    let throughput = all_warm.len() as f64 / warm_wall.as_secs_f64().max(1e-9);
    let total_cold_ms: f64 = rows.iter().map(|r| r.cold_ms).sum();
    let overall_speedup =
        (total_cold_ms / rows.len() as f64) / (overall_p50.as_secs_f64() * 1e3).max(1e-9);
    let stats = server.stats();
    println!(
        "overall: {} warm requests in {:.3?}  p50 {:.3?}  p95 {:.3?}  {:.0} req/s  mean hit speedup {:.1}x",
        all_warm.len(),
        warm_wall,
        overall_p50,
        overall_p95,
        throughput,
        overall_speedup,
    );
    println!(
        "cache: {} hits, {} misses, {} insertions ({} coalesced, {} batched)",
        stats.cache_hits, stats.cache_misses, stats.cache_insertions, stats.coalesced,
        stats.batched,
    );
    assert!(
        overall_speedup > 1.0,
        "cache hits must beat cold saturation"
    );

    // Hand-rolled JSON (the workspace is dependency-free offline).
    let mut json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"workers\": 2,\n  \"clients\": {CLIENTS},\n  \"rounds\": {ROUNDS},\n  \"steps\": {STEPS},\n  \"kernels\": [\n"
    );
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"cold_ms\": {:.3}, \"warm_p50_ms\": {:.3}, \
             \"warm_p95_ms\": {:.3}, \"cache_hit_speedup\": {:.3}, \"cold_boot_ms\": {:.3}, \
             \"warm_boot_ms\": {:.3}, \"warm_boot_speedup\": {:.3}, \
             \"warm_start_saturation_ms\": {:.3}}}{}\n",
            r.kernel,
            r.cold_ms,
            r.warm_p50_ms,
            r.warm_p95_ms,
            r.speedup,
            r.cold_ms, // cold boot *is* the first saturation on an empty store
            r.warm_boot_ms,
            r.cold_ms / r.warm_boot_ms.max(1e-9),
            r.warm_start_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    let total_warm_boot_ms: f64 = rows.iter().map(|r| r.warm_boot_ms).sum();
    json.push_str(&format!(
        "  ],\n  \"overall\": {{\"warm_requests\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
         \"throughput_rps\": {:.1}, \"cache_hit_speedup\": {:.3}, \"cache_hits\": {}, \
         \"coalesced\": {}, \"cold_boot_ms\": {:.3}, \"warm_boot_ms\": {:.3}, \
         \"warm_boot_speedup\": {:.3}}}\n}}\n",
        all_warm.len(),
        overall_p50.as_secs_f64() * 1e3,
        overall_p95.as_secs_f64() * 1e3,
        throughput,
        overall_speedup,
        stats.cache_hits,
        stats.coalesced,
        total_cold_ms,
        total_warm_boot_ms,
        total_cold_ms / total_warm_boot_ms.max(1e-9),
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&warm_dir);
}
