//! Criterion benchmarks for the run-time experiments (figs. 5–7): the
//! reference implementation vs. LIAR's pure-C and BLAS solutions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use liar_bench::harness;
use liar_core::Target;
use liar_kernels::Kernel;
use liar_runtime::exec;

/// Fast-running kernels covering the fig. 7 outcome classes: big library
/// win (1mm), moderate win (gemv), wash (axpy), library loss (vsum,
/// blur1d).
const KERNELS: [Kernel; 5] = [
    Kernel::OneMm,
    Kernel::Gemv,
    Kernel::Axpy,
    Kernel::Vsum,
    Kernel::Blur1d,
];

fn bench_fig7(c: &mut Criterion) {
    for kernel in KERNELS {
        let n = kernel.bench_size();
        let inputs = kernel.inputs(n, 0xC60);
        let mut group = c.benchmark_group(format!("fig7_{}", kernel.name()));
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(4));

        group.bench_function("reference", |b| {
            b.iter(|| kernel.reference(n, &inputs).unwrap())
        });

        for target in [Target::Blas, Target::PureC] {
            let expr = kernel.expr(n);
            let report = harness::pipeline_for(kernel, target).optimize(&expr);
            let best = report.best().best.clone();
            group.bench_with_input(
                BenchmarkId::new("solution", target.name()),
                &best,
                |b, solution| b.iter(|| exec::run(solution, &inputs).unwrap().0),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
