//! Benchmarks for the run-time experiments (figs. 5–7): the reference
//! implementation vs. LIAR's pure-C and BLAS solutions.
//!
//! Run with `cargo bench --bench solutions`. Plain `main` + the in-crate
//! [`liar_bench::timing`] harness (no criterion; the workspace builds
//! offline).

use liar_bench::{harness, timing};
use liar_core::Target;
use liar_kernels::Kernel;
use liar_runtime::exec;

/// Fast-running kernels covering the fig. 7 outcome classes: big library
/// win (1mm), moderate win (gemv), wash (axpy), library loss (vsum,
/// blur1d).
const KERNELS: [Kernel; 5] = [
    Kernel::OneMm,
    Kernel::Gemv,
    Kernel::Axpy,
    Kernel::Vsum,
    Kernel::Blur1d,
];

const SAMPLES: usize = 5;

fn main() {
    for kernel in KERNELS {
        let n = kernel.bench_size();
        let inputs = kernel.inputs(n, 0xC60);
        println!("\n== fig7_{} ==", kernel.name());

        timing::bench_and_report(format!("fig7_{}/reference", kernel.name()), SAMPLES, || {
            kernel.reference(n, &inputs).unwrap()
        });

        for target in [Target::Blas, Target::PureC] {
            let expr = kernel.expr(n);
            let report = harness::pipeline_for(kernel, target).optimize(&expr);
            let best = report.best().best.clone();
            timing::bench_and_report(
                format!("fig7_{}/solution/{}", kernel.name(), target.name()),
                SAMPLES,
                || exec::run(&best, &inputs).unwrap().0,
            );
        }
    }
}
