//! Tracing overhead benchmark: what the observability layer costs on the
//! saturation workload.
//!
//! Three configurations of the same kernel pipeline:
//!
//! * **baseline** — no recorder attached (the sink is `TraceSink::off()`
//!   everywhere, spans compile to nothing at the call site);
//! * **disabled** — a recorder attached but switched off
//!   ([`Recorder::off`]): every span site pays one relaxed atomic load
//!   plus a branch. The contract is ≤ 2% overhead vs baseline, gated in
//!   `BENCH_trace.json` (`gate_2pct_pass`, min-of-samples aggregate).
//! * **enabled** — a live recorder ([`Recorder::new`]) collecting the
//!   full span stream; reported for scale (this is what `liar profile`
//!   and `--trace` pay), not gated.
//!
//! Determinism is asserted while measuring: all three configurations
//! must extract the same solution at the same cost.
//!
//! Results are printed and written to `BENCH_trace.json` at the repo
//! root; CI runs this bench and uploads the artifact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use liar_bench::harness;
use liar_core::{Liar, Target};
use liar_kernels::Kernel;
use liar_trace::Recorder;

const KERNELS: [Kernel; 3] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax];
const SAMPLES: usize = 5;

/// Min of `SAMPLES` timed runs after one warm-up — the least-noise
/// estimator for an overhead ratio (noise only ever adds time).
fn measure(mut f: impl FnMut() -> f64) -> (Duration, f64) {
    let checksum = std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    (times[0], checksum)
}

struct Row {
    kernel: &'static str,
    baseline_s: f64,
    disabled_s: f64,
    enabled_s: f64,
    disabled_overhead: f64,
    enabled_overhead: f64,
}

fn main() {
    println!("== trace (span-recorder overhead on the saturation pipeline) ==");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host hardware threads: {hw}");

    let mut rows = Vec::new();
    for kernel in KERNELS {
        let expr = kernel.expr(kernel.search_size());
        let run = |pipeline: Liar| pipeline.optimize(&expr).best().cost;

        let (baseline, base_cost) = measure(|| run(harness::pipeline_for(kernel, Target::Blas)));
        let off = Recorder::off();
        let (disabled, off_cost) = measure(|| {
            run(harness::pipeline_for(kernel, Target::Blas).with_trace(Arc::clone(&off)))
        });
        let (enabled, on_cost) = measure(|| {
            // A fresh live recorder per run, like `liar profile` pays.
            run(harness::pipeline_for(kernel, Target::Blas).with_trace(Recorder::new()))
        });
        assert_eq!(base_cost, off_cost, "{kernel}: disabled tracing changed the solution cost");
        assert_eq!(base_cost, on_cost, "{kernel}: enabled tracing changed the solution cost");

        let disabled_overhead = disabled.as_secs_f64() / baseline.as_secs_f64().max(1e-9);
        let enabled_overhead = enabled.as_secs_f64() / baseline.as_secs_f64().max(1e-9);
        println!(
            "{:<24} baseline {:>9.3?}   disabled {:>9.3?} ({:>5.3}x)   enabled {:>9.3?} ({:>5.3}x)",
            format!("trace/{}", kernel.name()),
            baseline,
            disabled,
            disabled_overhead,
            enabled,
            enabled_overhead,
        );
        rows.push(Row {
            kernel: kernel.name(),
            baseline_s: baseline.as_secs_f64(),
            disabled_s: disabled.as_secs_f64(),
            enabled_s: enabled.as_secs_f64(),
            disabled_overhead,
            enabled_overhead,
        });
    }

    // The gate aggregates over kernels (ratio of summed minimums) so a
    // single noisy millisecond-scale run can't fail it on its own.
    let base_total: f64 = rows.iter().map(|r| r.baseline_s).sum();
    let disabled_total: f64 = rows.iter().map(|r| r.disabled_s).sum();
    let enabled_total: f64 = rows.iter().map(|r| r.enabled_s).sum();
    let aggregate_disabled = disabled_total / base_total.max(1e-9);
    let aggregate_enabled = enabled_total / base_total.max(1e-9);
    let gate_pass = aggregate_disabled <= 1.02;
    println!(
        "aggregate: disabled {:.3}x (gate ≤ 1.02: {}), enabled {:.3}x",
        aggregate_disabled,
        if gate_pass { "PASS" } else { "FAIL" },
        aggregate_enabled,
    );

    // Hand-rolled JSON (the workspace is dependency-free offline).
    let mut json = String::from("{\n  \"bench\": \"trace\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"baseline_s\": {:.6}, \"disabled_s\": {:.6}, \
             \"enabled_s\": {:.6}, \"disabled_overhead\": {:.4}, \"enabled_overhead\": {:.4}}}{}\n",
            r.kernel,
            r.baseline_s,
            r.disabled_s,
            r.enabled_s,
            r.disabled_overhead,
            r.enabled_overhead,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"aggregate_disabled_overhead\": {aggregate_disabled:.4},\n  \
         \"aggregate_enabled_overhead\": {aggregate_enabled:.4},\n  \
         \"gate_2pct_pass\": {gate_pass}\n}}\n"
    ));
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !gate_pass {
        eprintln!(
            "disabled-tracing overhead gate failed: {aggregate_disabled:.4}x > 1.02x \
             (a disabled recorder must cost one atomic load per span site)"
        );
        std::process::exit(1);
    }
}
