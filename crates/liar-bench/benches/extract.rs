//! Extraction benchmark: "saturate once, extract everywhere" versus
//! per-target re-runs, and tree versus DAG cost accounting, on the
//! PolyBench kernels.
//!
//! For each kernel the multi-target pipeline
//! ([`liar_core::Liar::optimize_multi`]) saturates one e-graph with the
//! union ruleset and extracts all three targets from it; the baseline
//! runs the three single-target pipelines back to back. Reported per
//! kernel:
//!
//! * **shared vs per-target wall-clock** (median of several runs) and the
//!   resulting speedup — the saturation amortization this PR is about;
//! * **tree vs DAG cost per target** (`dag_cost <= cost` is asserted for
//!   every target, per the extraction subsystem's guarantee);
//! * **solution parity**: the BLAS and PyTorch solutions of the shared
//!   run must be bit-identical to the per-target pipelines'.
//!
//! Results are printed and written to `BENCH_extract.json` at the repo
//! root; CI runs this bench as a smoke test of the speedup direction and
//! the cost/parity assertions.

use std::time::{Duration, Instant};

use liar_bench::harness;
use liar_core::Target;
use liar_kernels::Kernel;

const KERNELS: [Kernel; 4] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax, Kernel::Mvt];
const SAMPLES: usize = 3;

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

struct TargetRow {
    target: &'static str,
    tree_cost: f64,
    dag_cost: f64,
    sharing: f64,
    extract_s: f64,
    solution: String,
}

struct Row {
    kernel: &'static str,
    shared_s: f64,
    per_target_s: f64,
    speedup: f64,
    targets: Vec<TargetRow>,
}

fn main() {
    println!("== extract (saturate once + extract everywhere vs per-target re-runs) ==");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host hardware threads: {hw}");

    let mut rows = Vec::new();
    for kernel in KERNELS {
        let expr = kernel.expr(kernel.search_size());
        let multi_pipeline = harness::pipeline_for(kernel, Target::Blas);

        // Correctness first: one multi run, compared against the three
        // per-target pipelines it replaces.
        let multi = multi_pipeline.optimize_multi(&expr, &Target::ALL, &[1.0]);
        let mut targets = Vec::new();
        for target in Target::ALL {
            let sol = multi.solution(target).expect("every target extracted");
            assert!(
                sol.dag_cost <= sol.cost,
                "{kernel}/{target}: dag cost {} exceeds tree cost {}",
                sol.dag_cost,
                sol.cost
            );
            if target != Target::PureC {
                // Library-call solutions are exact (pure C can lag on
                // iteration-truncated kernels; see docs/EXTRACTION.md).
                let single = harness::optimize_kernel(kernel, target);
                assert_eq!(
                    sol.best,
                    single.best().best,
                    "{kernel}/{target}: shared-saturation solution diverged"
                );
                assert_eq!(sol.cost, single.best().cost);
            }
            targets.push(TargetRow {
                target: target.name(),
                tree_cost: sol.cost,
                dag_cost: sol.dag_cost,
                sharing: sol.sharing_discount(),
                extract_s: sol.extract_time.as_secs_f64(),
                solution: sol.solution_summary(),
            });
        }

        // Timing: median over SAMPLES (plus one warm-up each).
        let _ = multi_pipeline.optimize_multi(&expr, &Target::ALL, &[1.0]);
        let shared = median(
            (0..SAMPLES)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(
                        multi_pipeline.optimize_multi(&expr, &Target::ALL, &[1.0]),
                    );
                    start.elapsed()
                })
                .collect(),
        );
        for target in Target::ALL {
            let _ = harness::optimize_kernel(kernel, target);
        }
        let per_target = median(
            (0..SAMPLES)
                .map(|_| {
                    let start = Instant::now();
                    for target in Target::ALL {
                        std::hint::black_box(harness::optimize_kernel(kernel, target));
                    }
                    start.elapsed()
                })
                .collect(),
        );
        let speedup = per_target.as_secs_f64() / shared.as_secs_f64().max(1e-9);
        println!(
            "{:<40} shared {:>10.3?}   per-target {:>10.3?}   speedup {:>5.2}x",
            format!("extract/{}", kernel.name()),
            shared,
            per_target,
            speedup,
        );
        for t in &targets {
            println!(
                "    {:<8} tree {:>12.1}  dag {:>12.1}  shared {:>5.1}%  extract {:>9.6}s  {}",
                t.target,
                t.tree_cost,
                t.dag_cost,
                100.0 * t.sharing,
                t.extract_s,
                t.solution,
            );
        }
        rows.push(Row {
            kernel: kernel.name(),
            shared_s: shared.as_secs_f64(),
            per_target_s: per_target.as_secs_f64(),
            speedup,
            targets,
        });
    }

    // Hand-rolled JSON (the workspace is dependency-free offline).
    let mut json =
        String::from("{\n  \"bench\": \"extract\",\n  \"targets\": [\"pure-c\", \"blas\", \"pytorch\"],\n  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shared_s\": {:.6}, \"per_target_s\": {:.6}, \"speedup\": {:.3}, \"extractions\": [\n",
            r.kernel, r.shared_s, r.per_target_s, r.speedup,
        ));
        for (j, t) in r.targets.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"target\": \"{}\", \"tree_cost\": {:.3}, \"dag_cost\": {:.3}, \
                 \"sharing_discount\": {:.4}, \"extract_s\": {:.6}, \"solution\": \"{}\"}}{}\n",
                t.target,
                t.tree_cost,
                t.dag_cost,
                t.sharing,
                t.extract_s,
                t.solution.replace('"', "'"),
                if j + 1 == r.targets.len() { "" } else { "," },
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_extract.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let total_shared: f64 = rows.iter().map(|r| r.shared_s).sum();
    let total_per_target: f64 = rows.iter().map(|r| r.per_target_s).sum();
    println!(
        "total: shared {:.3}s vs per-target {:.3}s ({:.2}x)",
        total_shared,
        total_per_target,
        total_per_target / total_shared.max(1e-9)
    );
}
