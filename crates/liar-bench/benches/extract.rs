//! Extraction gym: "saturate once, extract everywhere" versus per-target
//! re-runs, plus a tree / greedy-DAG / exact extractor shoot-out on the
//! shared saturated e-graph, on the PolyBench kernels.
//!
//! For each kernel the multi-target pipeline
//! ([`liar_core::Liar::optimize_multi`]) saturates one e-graph with the
//! union ruleset and extracts all three targets from it; the baseline
//! runs the three single-target pipelines back to back. Reported per
//! kernel:
//!
//! * **shared vs per-target wall-clock** (median of several runs) and the
//!   resulting speedup — the saturation amortization;
//! * **tree vs DAG cost per target** (`dag_cost <= cost` is asserted for
//!   every target, per the extraction subsystem's guarantee);
//! * **solution parity**: the BLAS and PyTorch solutions of the shared
//!   run must be bit-identical to the per-target pipelines';
//! * **the gym**: on one shared saturated e-graph per kernel, every
//!   target is extracted by all three extractors — worklist tree
//!   ([`liar_egraph::Extractor`]), worklist greedy DAG
//!   ([`liar_egraph::DagExtractor`]) and branch-and-bound exact
//!   ([`liar_egraph::ExactExtractor`]) — timing each and asserting the
//!   cost chain `exact <= dag <= tree`. The exact outcome (proven
//!   `optimal` or `budget` fallback) is recorded so regressions in the
//!   search budget are visible in the JSON, not silent.
//!
//! The mvt per-target extraction times are also gated against the values
//! recorded before the worklist extractors landed (see
//! `MVT_SEED_EXTRACT_S`): the worklist rewrite measures ~7-10x faster,
//! and this bench fails if any target's extraction falls under a 5x
//! improvement on its seed value.
//!
//! Results are printed and written to `BENCH_extract.json` at the repo
//! root; CI runs this bench as a smoke test of the speedup direction and
//! the cost/parity assertions.

use std::time::{Duration, Instant};

use liar_bench::harness;
use liar_core::{Target, TargetCost};
use liar_egraph::{DagExtractor, ExactExtractor, Extractor};
use liar_kernels::Kernel;

const KERNELS: [Kernel; 4] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax, Kernel::Mvt];
const SAMPLES: usize = 3;

/// Per-target extraction seconds of the mvt kernel recorded at the growth
/// seed, before the worklist extractors replaced the whole-graph pass
/// fixpoints (pure-c, blas, pytorch). The bench asserts today's times stay
/// strictly below these — they are ~5-50x above current, so this only
/// trips on a real algorithmic regression, not timer noise.
const MVT_SEED_EXTRACT_S: [f64; 3] = [0.063087, 0.056275, 0.044048];

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

struct TargetRow {
    target: &'static str,
    tree_cost: f64,
    dag_cost: f64,
    sharing: f64,
    extract_s: f64,
    solution: String,
    // Gym columns: all three extractors on the shared saturated e-graph.
    tree_s: f64,
    dag_s: f64,
    exact_s: f64,
    exact_cost: f64,
    exact_outcome: String,
    relaxations: usize,
}

struct Row {
    kernel: &'static str,
    shared_s: f64,
    per_target_s: f64,
    speedup: f64,
    targets: Vec<TargetRow>,
}

fn main() {
    println!("== extract (saturate once + extract everywhere vs per-target re-runs) ==");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host hardware threads: {hw}");

    let mut rows = Vec::new();
    for kernel in KERNELS {
        let expr = kernel.expr(kernel.search_size());
        let multi_pipeline = harness::pipeline_for(kernel, Target::Blas);

        // Correctness first: one multi run, compared against the three
        // per-target pipelines it replaces.
        let multi = multi_pipeline
            .optimize_multi(&expr, &Target::ALL, &[1.0])
            .expect("kernels are extractable for every target");
        // The gym extracts from one shared saturated e-graph; saturation is
        // deterministic, so its costs must agree with the multi report's.
        let (egraph, root) = multi_pipeline.saturate_for_targets(&expr, &Target::ALL);
        let mut targets = Vec::new();
        for (ti, target) in Target::ALL.into_iter().enumerate() {
            let sol = multi.solution(target).expect("every target extracted");
            assert!(
                sol.dag_cost <= sol.cost,
                "{kernel}/{target}: dag cost {} exceeds tree cost {}",
                sol.dag_cost,
                sol.cost
            );
            if target != Target::PureC {
                // Library-call solutions are exact (pure C can lag on
                // iteration-truncated kernels; see docs/EXTRACTION.md).
                let single = harness::optimize_kernel(kernel, target);
                assert_eq!(
                    sol.best,
                    single.best().best,
                    "{kernel}/{target}: shared-saturation solution diverged"
                );
                assert_eq!(sol.cost, single.best().cost);
            }

            // The gym: tree, greedy DAG and exact on the shared e-graph.
            let cost_fn = TargetCost::new(target);
            let start = Instant::now();
            let tree = Extractor::new(&egraph, cost_fn);
            let (tree_cost, _) = tree
                .try_find_best(root)
                .unwrap_or_else(|e| panic!("{kernel}/{target}: tree extraction failed: {e}"));
            let tree_s = start.elapsed().as_secs_f64();
            let relaxations = tree.stats().relaxations;

            let start = Instant::now();
            let dag = DagExtractor::new(&egraph, cost_fn);
            let (dag_cost, _) = dag
                .try_find_best(root)
                .unwrap_or_else(|e| panic!("{kernel}/{target}: dag extraction failed: {e}"));
            let dag_s = start.elapsed().as_secs_f64();

            let start = Instant::now();
            let exact = ExactExtractor::new(&egraph, cost_fn)
                .solve(root)
                .unwrap_or_else(|| panic!("{kernel}/{target}: exact extraction failed"));
            let exact_s = start.elapsed().as_secs_f64();

            // The cost chain the subsystem guarantees: the exact solver
            // starts from the greedy incumbent and only improves it, and
            // the greedy DAG never pays more than the tree.
            assert!(
                exact.cost <= dag_cost + 1e-9,
                "{kernel}/{target}: exact cost {} exceeds greedy dag cost {}",
                exact.cost,
                dag_cost
            );
            assert!(
                dag_cost <= tree_cost + 1e-9,
                "{kernel}/{target}: dag cost {dag_cost} exceeds tree cost {tree_cost}"
            );
            // And the shared graph agrees with the multi report.
            assert!(
                (tree_cost - sol.cost).abs() <= 1e-9 && (dag_cost - sol.dag_cost).abs() <= 1e-9,
                "{kernel}/{target}: gym costs ({tree_cost}, {dag_cost}) diverged from \
                 the multi report ({}, {})",
                sol.cost,
                sol.dag_cost
            );
            if kernel == Kernel::Mvt {
                // The acceptance bar for the worklist rewrite: >= 5x under
                // the pass-based seed values (measured ~7-10x; the margin
                // absorbs runner noise).
                assert!(
                    sol.extract_time.as_secs_f64() < MVT_SEED_EXTRACT_S[ti] / 5.0,
                    "mvt/{target}: extraction took {:.6}s, above a 5x improvement \
                     on the pre-worklist seed value {:.6}s",
                    sol.extract_time.as_secs_f64(),
                    MVT_SEED_EXTRACT_S[ti]
                );
            }

            targets.push(TargetRow {
                target: target.name(),
                tree_cost: sol.cost,
                dag_cost: sol.dag_cost,
                sharing: sol.sharing_discount(),
                extract_s: sol.extract_time.as_secs_f64(),
                solution: sol.solution_summary(),
                tree_s,
                dag_s,
                exact_s,
                exact_cost: exact.cost,
                exact_outcome: exact.outcome.to_string(),
                relaxations,
            });
        }

        // Timing: median over SAMPLES (plus one warm-up each).
        let _ = multi_pipeline.optimize_multi(&expr, &Target::ALL, &[1.0]);
        let shared = median(
            (0..SAMPLES)
                .map(|_| {
                    let start = Instant::now();
                    let _ = std::hint::black_box(
                        multi_pipeline.optimize_multi(&expr, &Target::ALL, &[1.0]),
                    );
                    start.elapsed()
                })
                .collect(),
        );
        for target in Target::ALL {
            let _ = harness::optimize_kernel(kernel, target);
        }
        let per_target = median(
            (0..SAMPLES)
                .map(|_| {
                    let start = Instant::now();
                    for target in Target::ALL {
                        std::hint::black_box(harness::optimize_kernel(kernel, target));
                    }
                    start.elapsed()
                })
                .collect(),
        );
        let speedup = per_target.as_secs_f64() / shared.as_secs_f64().max(1e-9);
        println!(
            "{:<40} shared {:>10.3?}   per-target {:>10.3?}   speedup {:>5.2}x",
            format!("extract/{}", kernel.name()),
            shared,
            per_target,
            speedup,
        );
        for t in &targets {
            println!(
                "    {:<8} tree {:>12.1}  dag {:>12.1}  exact {:>12.1} ({})  shared {:>5.1}%  extract {:>9.6}s  {}",
                t.target,
                t.tree_cost,
                t.dag_cost,
                t.exact_cost,
                t.exact_outcome,
                100.0 * t.sharing,
                t.extract_s,
                t.solution,
            );
            println!(
                "             gym: tree {:>9.6}s ({} relaxations)  dag {:>9.6}s  exact {:>9.6}s",
                t.tree_s, t.relaxations, t.dag_s, t.exact_s,
            );
        }
        rows.push(Row {
            kernel: kernel.name(),
            shared_s: shared.as_secs_f64(),
            per_target_s: per_target.as_secs_f64(),
            speedup,
            targets,
        });
    }

    // Hand-rolled JSON (the workspace is dependency-free offline).
    let mut json =
        String::from("{\n  \"bench\": \"extract\",\n  \"targets\": [\"pure-c\", \"blas\", \"pytorch\"],\n  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"shared_s\": {:.6}, \"per_target_s\": {:.6}, \"speedup\": {:.3}, \"extractions\": [\n",
            r.kernel, r.shared_s, r.per_target_s, r.speedup,
        ));
        for (j, t) in r.targets.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"target\": \"{}\", \"tree_cost\": {:.3}, \"dag_cost\": {:.3}, \
                 \"sharing_discount\": {:.4}, \"extract_s\": {:.6}, \
                 \"tree_s\": {:.6}, \"dag_s\": {:.6}, \"exact_s\": {:.6}, \
                 \"exact_cost\": {:.3}, \"exact_outcome\": \"{}\", \"relaxations\": {}, \
                 \"solution\": \"{}\"}}{}\n",
                t.target,
                t.tree_cost,
                t.dag_cost,
                t.sharing,
                t.extract_s,
                t.tree_s,
                t.dag_s,
                t.exact_s,
                t.exact_cost,
                t.exact_outcome,
                t.relaxations,
                t.solution.replace('"', "'"),
                if j + 1 == r.targets.len() { "" } else { "," },
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_extract.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let total_shared: f64 = rows.iter().map(|r| r.shared_s).sum();
    let total_per_target: f64 = rows.iter().map(|r| r.per_target_s).sum();
    println!(
        "total: shared {:.3}s vs per-target {:.3}s ({:.2}x)",
        total_shared,
        total_per_target,
        total_per_target / total_shared.max(1e-9)
    );
}
