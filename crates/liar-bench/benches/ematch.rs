//! E-matching microbenchmark: the compiled VM + operator index versus the
//! pre-refactor oracle matcher, on the PolyBench kernels.
//!
//! For each kernel the same saturation run is driven twice — once with the
//! shipped rules (compiled e-matching VM, operator-indexed candidate
//! lists) and once with every pattern searcher swapped for the legacy
//! recursive oracle (`Rewrite::with_oracle_searcher`, a faithful stand-in
//! for the pre-VM engine). Reported per kernel:
//!
//! * **search-phase time** (median of several runs) for both engines;
//! * **candidate classes visited** by the search phase (the operator index
//!   must make the VM strictly cheaper);
//! * **matches found** (must be identical — the engines are equivalent).
//!
//! Results are printed and written to `BENCH_ematch.json` at the repo
//! root; CI runs this bench as a smoke test of both the speedup direction
//! and the equivalence assertions.

use std::time::Duration;

use liar_bench::harness;
use liar_core::rules::{rules_for, RuleConfig};
use liar_core::{Target, TargetCost};
use liar_egraph::{BackoffScheduler, Extractor, Runner};
use liar_ir::{ArrayAnalysis, ArrayEGraph, ArrayLang, Expr};
use liar_kernels::Kernel;

type ARewrite = liar_egraph::Rewrite<ArrayLang, ArrayAnalysis>;

const KERNELS: [Kernel; 4] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax, Kernel::Mvt];
const SAMPLES: usize = 3;

/// One saturation run; returns (search time, candidates visited, matches
/// found, solution summary, cost).
fn run(
    rules: &[ARewrite],
    expr: &Expr,
    kernel: Kernel,
    target: Target,
) -> (Duration, usize, usize, String, f64) {
    let mut eg = ArrayEGraph::default();
    let root = eg.add_expr(expr);
    let mut runner = Runner::new(eg)
        .with_root(root)
        .with_iter_limit(harness::step_limit(kernel))
        .with_node_limit(150_000)
        .with_scheduler(BackoffScheduler::new(30_000, 2));
    runner.run(rules);
    let search: Duration = runner.iterations.iter().map(|i| i.search_time).sum();
    let candidates: usize = runner.iterations.iter().map(|i| i.search_candidates).sum();
    let matches: usize = runner.iterations.iter().map(|i| i.search_matches).sum();
    let extractor = Extractor::new(&runner.egraph, TargetCost::new(target));
    let (cost, best) = extractor.find_best(root);
    let summary = liar_core::pipeline::count_lib_calls(&best)
        .iter()
        .map(|(name, count)| format!("{count} × {name}"))
        .collect::<Vec<_>>()
        .join(" + ");
    (search, candidates, matches, summary, cost)
}

/// Median search-phase time over `SAMPLES` runs (plus one warm-up).
fn median_search(rules: &[ARewrite], expr: &Expr, kernel: Kernel, target: Target) -> Duration {
    let _ = run(rules, expr, kernel, target); // warm-up
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| run(rules, expr, kernel, target).0)
        .collect();
    times.sort();
    times[times.len() / 2]
}

struct Row {
    kernel: &'static str,
    vm_search_s: f64,
    oracle_search_s: f64,
    speedup: f64,
    vm_candidates: usize,
    oracle_candidates: usize,
    matches: usize,
    solution: String,
}

fn main() {
    println!("== ematch (VM + operator index vs. oracle matcher, BLAS rules) ==");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host hardware threads: {hw} (both engines run serially here)");

    let target = Target::Blas;
    let rules = rules_for(target, &RuleConfig::default());
    let oracle_rules: Vec<ARewrite> = rules.iter().map(|r| r.with_oracle_searcher()).collect();

    let mut rows = Vec::new();
    for kernel in KERNELS {
        let expr = kernel.expr(kernel.search_size());

        // Equivalence first: identical matches, solutions and costs.
        let (_, vm_cands, vm_matches, vm_sol, vm_cost) = run(&rules, &expr, kernel, target);
        let (_, or_cands, or_matches, or_sol, or_cost) =
            run(&oracle_rules, &expr, kernel, target);
        assert_eq!(vm_matches, or_matches, "{kernel}: match counts diverged");
        assert_eq!(vm_sol, or_sol, "{kernel}: solutions diverged");
        assert_eq!(vm_cost, or_cost, "{kernel}: costs diverged");
        assert!(
            vm_cands < or_cands,
            "{kernel}: VM visited {vm_cands} candidate classes, oracle {or_cands} — \
             the operator index must strictly reduce visits"
        );

        let vm_time = median_search(&rules, &expr, kernel, target);
        let oracle_time = median_search(&oracle_rules, &expr, kernel, target);
        let speedup = oracle_time.as_secs_f64() / vm_time.as_secs_f64().max(1e-9);
        println!(
            "{:<40} vm search {:>10.3?}   oracle search {:>10.3?}   speedup {:>5.2}x   \
             candidates {} vs {}   matches {}",
            format!("ematch/{}", kernel.name()),
            vm_time,
            oracle_time,
            speedup,
            vm_cands,
            or_cands,
            vm_matches,
        );
        rows.push(Row {
            kernel: kernel.name(),
            vm_search_s: vm_time.as_secs_f64(),
            oracle_search_s: oracle_time.as_secs_f64(),
            speedup,
            vm_candidates: vm_cands,
            oracle_candidates: or_cands,
            matches: vm_matches,
            solution: vm_sol,
        });
    }

    // Hand-rolled JSON (the workspace is dependency-free offline).
    let mut json = String::from("{\n  \"bench\": \"ematch\",\n  \"target\": \"blas\",\n  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"vm_search_s\": {:.6}, \"oracle_search_s\": {:.6}, \
             \"speedup\": {:.3}, \"vm_candidates\": {}, \"oracle_candidates\": {}, \
             \"matches\": {}, \"solution\": \"{}\"}}{}\n",
            r.kernel,
            r.vm_search_s,
            r.oracle_search_s,
            r.speedup,
            r.vm_candidates,
            r.oracle_candidates,
            r.matches,
            r.solution.replace('"', "'"),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ematch.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let total_vm: f64 = rows.iter().map(|r| r.vm_search_s).sum();
    let total_oracle: f64 = rows.iter().map(|r| r.oracle_search_s).sum();
    println!(
        "total search: vm {:.3}s vs oracle {:.3}s ({:.2}x)",
        total_vm,
        total_oracle,
        total_oracle / total_vm.max(1e-9)
    );
}
