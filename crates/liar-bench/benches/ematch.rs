//! E-matching microbenchmark: three search engines on the PolyBench
//! kernels —
//!
//! * the **semi-naive** engine (compiled VM + operator index + delta
//!   frontier, the shipped default),
//! * the **whole-graph VM** (compiled VM + operator index, frontier off),
//! * the pre-refactor **oracle** matcher (`Rewrite::with_oracle_searcher`,
//!   a faithful stand-in for the pre-VM engine).
//!
//! For each kernel the same saturation run is driven with all three.
//! Reported per kernel:
//!
//! * **search-phase time** (median of several runs) for each engine;
//! * **candidate classes visited** by each (the operator index must make
//!   the VM strictly cheaper than the oracle; the delta frontier must
//!   scan strictly fewer classes still — `frontier_candidates`);
//! * **matches found** (must be identical — the engines are equivalent).
//!
//! Results are printed and written to `BENCH_ematch.json` at the repo
//! root; CI runs this bench as a smoke test of both the speedup direction
//! and the equivalence assertions.

use std::time::Duration;

use liar_bench::harness;
use liar_core::rules::{rules_for, RuleConfig};
use liar_core::{Target, TargetCost};
use liar_egraph::{BackoffScheduler, Extractor, Runner};
use liar_ir::{ArrayAnalysis, ArrayEGraph, ArrayLang, Expr};
use liar_kernels::Kernel;

type ARewrite = liar_egraph::Rewrite<ArrayLang, ArrayAnalysis>;

const KERNELS: [Kernel; 4] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax, Kernel::Mvt];
const SAMPLES: usize = 3;

struct RunStats {
    search: Duration,
    candidates: usize,
    frontier: usize,
    matches: usize,
    solution: String,
    cost: f64,
}

/// One saturation run under the given engine configuration.
fn run(rules: &[ARewrite], expr: &Expr, kernel: Kernel, target: Target, seminaive: bool) -> RunStats {
    let mut eg = ArrayEGraph::default();
    let root = eg.add_expr(expr);
    let mut runner = Runner::new(eg)
        .with_root(root)
        .with_iter_limit(harness::step_limit(kernel))
        .with_node_limit(150_000)
        .with_seminaive(seminaive)
        .with_scheduler(BackoffScheduler::new(30_000, 2));
    runner.run(rules);
    let search: Duration = runner.iterations.iter().map(|i| i.search_time).sum();
    let candidates: usize = runner.iterations.iter().map(|i| i.search_candidates).sum();
    let frontier: usize = runner.iterations.iter().map(|i| i.frontier_candidates).sum();
    let matches: usize = runner.iterations.iter().map(|i| i.search_matches).sum();
    let extractor = Extractor::new(&runner.egraph, TargetCost::new(target));
    let (cost, best) = extractor.find_best(root);
    let solution = liar_core::pipeline::count_lib_calls(&best)
        .iter()
        .map(|(name, count)| format!("{count} × {name}"))
        .collect::<Vec<_>>()
        .join(" + ");
    RunStats { search, candidates, frontier, matches, solution, cost }
}

/// Median search-phase time over `SAMPLES` runs (plus one warm-up).
fn median_search(
    rules: &[ARewrite],
    expr: &Expr,
    kernel: Kernel,
    target: Target,
    seminaive: bool,
) -> Duration {
    let _ = run(rules, expr, kernel, target, seminaive); // warm-up
    let mut times: Vec<Duration> = (0..SAMPLES)
        .map(|_| run(rules, expr, kernel, target, seminaive).search)
        .collect();
    times.sort();
    times[times.len() / 2]
}

struct Row {
    kernel: &'static str,
    seminaive_search_s: f64,
    vm_search_s: f64,
    oracle_search_s: f64,
    seminaive_speedup: f64,
    speedup: f64,
    frontier_candidates: usize,
    vm_candidates: usize,
    oracle_candidates: usize,
    matches: usize,
    solution: String,
}

fn main() {
    println!("== ematch (semi-naive frontier vs. whole-graph VM vs. oracle matcher, BLAS rules) ==");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host hardware threads: {hw} (all engines run serially here)");

    let target = Target::Blas;
    let rules = rules_for(target, &RuleConfig::default());
    let oracle_rules: Vec<ARewrite> = rules.iter().map(|r| r.with_oracle_searcher()).collect();

    let mut rows = Vec::new();
    for kernel in KERNELS {
        let expr = kernel.expr(kernel.search_size());

        // Equivalence first: identical matches, solutions and costs.
        let semi = run(&rules, &expr, kernel, target, true);
        let vm = run(&rules, &expr, kernel, target, false);
        let oracle = run(&oracle_rules, &expr, kernel, target, false);
        assert_eq!(semi.matches, vm.matches, "{kernel}: semi-naive match count diverged");
        assert_eq!(semi.solution, vm.solution, "{kernel}: semi-naive solution diverged");
        assert_eq!(semi.cost, vm.cost, "{kernel}: semi-naive cost diverged");
        assert_eq!(vm.matches, oracle.matches, "{kernel}: match counts diverged");
        assert_eq!(vm.solution, oracle.solution, "{kernel}: solutions diverged");
        assert_eq!(vm.cost, oracle.cost, "{kernel}: costs diverged");
        assert!(
            vm.candidates < oracle.candidates,
            "{kernel}: VM visited {} candidate classes, oracle {} — \
             the operator index must strictly reduce visits",
            vm.candidates,
            oracle.candidates,
        );
        assert!(
            semi.frontier < vm.candidates,
            "{kernel}: frontier scanned {} classes, whole-graph {} — \
             the delta frontier must strictly reduce scans",
            semi.frontier,
            vm.candidates,
        );
        assert_eq!(
            vm.frontier, vm.candidates,
            "{kernel}: with semi-naive off, frontier must equal candidates"
        );

        let semi_time = median_search(&rules, &expr, kernel, target, true);
        let vm_time = median_search(&rules, &expr, kernel, target, false);
        let oracle_time = median_search(&oracle_rules, &expr, kernel, target, false);
        let seminaive_speedup = vm_time.as_secs_f64() / semi_time.as_secs_f64().max(1e-9);
        let speedup = oracle_time.as_secs_f64() / vm_time.as_secs_f64().max(1e-9);
        println!(
            "{:<40} semi {:>10.3?}   vm {:>10.3?}   oracle {:>10.3?}   semi/vm {:>5.2}x   \
             scans {} vs {} vs {}   matches {}",
            format!("ematch/{}", kernel.name()),
            semi_time,
            vm_time,
            oracle_time,
            seminaive_speedup,
            semi.frontier,
            vm.candidates,
            oracle.candidates,
            semi.matches,
        );
        rows.push(Row {
            kernel: kernel.name(),
            seminaive_search_s: semi_time.as_secs_f64(),
            vm_search_s: vm_time.as_secs_f64(),
            oracle_search_s: oracle_time.as_secs_f64(),
            seminaive_speedup,
            speedup,
            frontier_candidates: semi.frontier,
            vm_candidates: vm.candidates,
            oracle_candidates: oracle.candidates,
            matches: semi.matches,
            solution: semi.solution,
        });
    }

    // Hand-rolled JSON (the workspace is dependency-free offline).
    let mut json = String::from("{\n  \"bench\": \"ematch\",\n  \"target\": \"blas\",\n  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"seminaive_search_s\": {:.6}, \"vm_search_s\": {:.6}, \
             \"oracle_search_s\": {:.6}, \"seminaive_speedup\": {:.3}, \"speedup\": {:.3}, \
             \"frontier_candidates\": {}, \"vm_candidates\": {}, \"oracle_candidates\": {}, \
             \"matches\": {}, \"solution\": \"{}\"}}{}\n",
            r.kernel,
            r.seminaive_search_s,
            r.vm_search_s,
            r.oracle_search_s,
            r.seminaive_speedup,
            r.speedup,
            r.frontier_candidates,
            r.vm_candidates,
            r.oracle_candidates,
            r.matches,
            r.solution.replace('"', "'"),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ematch.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    let total_semi: f64 = rows.iter().map(|r| r.seminaive_search_s).sum();
    let total_vm: f64 = rows.iter().map(|r| r.vm_search_s).sum();
    let total_oracle: f64 = rows.iter().map(|r| r.oracle_search_s).sum();
    println!(
        "total search: semi {:.3}s vs vm {:.3}s vs oracle {:.3}s (semi/vm {:.2}x, vm/oracle {:.2}x)",
        total_semi,
        total_vm,
        total_oracle,
        total_vm / total_semi.max(1e-9),
        total_oracle / total_vm.max(1e-9),
    );
}
