//! Criterion benchmarks for the saturation experiments (tables II–III,
//! fig. 4): how long LIAR takes to find each kernel's solution.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use liar_bench::harness;
use liar_core::Target;
use liar_kernels::Kernel;

/// Kernels representative of each structural family, to keep `cargo bench`
/// fast while covering the table rows (the `tables` binary runs all 16).
const REPRESENTATIVES: [Kernel; 5] = [
    Kernel::Vsum,
    Kernel::Axpy,
    Kernel::Gemv,
    Kernel::Atax,
    Kernel::Memset,
];

fn bench_table2_blas(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_blas_saturation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for kernel in REPRESENTATIVES {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &k| {
                b.iter(|| {
                    let report = harness::optimize_kernel(k, Target::Blas);
                    assert!(!report.steps.is_empty());
                    report.best().cost
                })
            },
        );
    }
    group.finish();
}

fn bench_table3_torch(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_pytorch_saturation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for kernel in REPRESENTATIVES {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, &k| {
                b.iter(|| {
                    let report = harness::optimize_kernel(k, Target::Torch);
                    report.best().cost
                })
            },
        );
    }
    group.finish();
}

/// Fig. 4's per-step work: one saturation step on the gemv kernel.
fn bench_fig4_step(c: &mut Criterion) {
    use liar_core::rules::{rules_for, RuleConfig};
    use liar_egraph::Runner;
    use liar_ir::ArrayEGraph;

    let mut group = c.benchmark_group("fig4_gemv_steps");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let expr = Kernel::Gemv.expr(Kernel::Gemv.search_size());
    let rules = rules_for(Target::Blas, &RuleConfig::default());
    for steps in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            b.iter(|| {
                let mut eg = ArrayEGraph::default();
                let root = eg.add_expr(&expr);
                let mut runner = Runner::new(eg).with_root(root).with_iter_limit(steps);
                runner.run(&rules);
                runner.egraph.num_nodes()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table2_blas, bench_table3_torch, bench_fig4_step);
criterion_main!(benches);
