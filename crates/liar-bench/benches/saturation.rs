//! Benchmarks for the saturation experiments (tables II–III, fig. 4): how
//! long LIAR takes to find each kernel's solution, and how much the
//! parallel search phase helps.
//!
//! Run with `cargo bench --bench saturation`. Plain `main` + the in-crate
//! [`liar_bench::timing`] harness (no criterion; the workspace builds
//! offline).

use liar_bench::{harness, timing};
use liar_core::{Liar, Target};
use liar_kernels::Kernel;

/// Kernels representative of each structural family, to keep `cargo bench`
/// fast while covering the table rows (the `tables` binary runs all 16).
const REPRESENTATIVES: [Kernel; 5] = [
    Kernel::Vsum,
    Kernel::Axpy,
    Kernel::Gemv,
    Kernel::Atax,
    Kernel::Memset,
];

const SAMPLES: usize = 3;

fn bench_table2_blas() {
    println!("\n== table2_blas_saturation ==");
    for kernel in REPRESENTATIVES {
        timing::bench_and_report(format!("table2_blas/{}", kernel.name()), SAMPLES, || {
            let report = harness::optimize_kernel(kernel, Target::Blas);
            assert!(!report.steps.is_empty());
            report.best().cost
        });
    }
}

fn bench_table3_torch() {
    println!("\n== table3_pytorch_saturation ==");
    for kernel in REPRESENTATIVES {
        timing::bench_and_report(format!("table3_torch/{}", kernel.name()), SAMPLES, || {
            harness::optimize_kernel(kernel, Target::Torch).best().cost
        });
    }
}

/// Fig. 4's per-step work: one saturation step on the gemv kernel.
fn bench_fig4_step() {
    use liar_core::rules::{rules_for, RuleConfig};
    use liar_egraph::Runner;
    use liar_ir::ArrayEGraph;

    println!("\n== fig4_gemv_steps ==");
    let expr = Kernel::Gemv.expr(Kernel::Gemv.search_size());
    let rules = rules_for(Target::Blas, &RuleConfig::default());
    for steps in [1usize, 3, 5] {
        timing::bench_and_report(format!("fig4_gemv_steps/{steps}"), SAMPLES, || {
            let mut eg = ArrayEGraph::default();
            let root = eg.add_expr(&expr);
            let mut runner = Runner::new(eg).with_root(root).with_iter_limit(steps);
            runner.run(&rules);
            runner.egraph.num_nodes()
        });
    }
}

/// Serial vs. parallel e-matching: the same saturation run at 1/2/4
/// threads, comparing total *search-phase* time (the part
/// [`Liar::with_threads`] parallelizes) and checking the solutions agree.
fn bench_parallel_search() {
    println!("\n== parallel_search (polybench kernels, search-phase time) ==");
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host hardware threads: {hw} (speedups need >1 to materialize)");
    for kernel in [Kernel::Gemv, Kernel::Atax, Kernel::Mvt] {
        let expr = kernel.expr(kernel.search_size());
        let pipeline = |threads: usize| {
            Liar::new(Target::Blas)
                .with_iter_limit(harness::step_limit(kernel))
                .with_node_limit(150_000)
                .with_match_limit(30_000)
                .with_threads(threads)
        };
        let serial_report = pipeline(1).optimize(&expr);
        let mut serial_search = None;
        for threads in [1usize, 2, 4] {
            // Median of the *measured search-phase* durations (one warm-up
            // run, then SAMPLES timed runs), not wall time.
            pipeline(threads).optimize(&expr);
            let mut searches: Vec<_> = (0..SAMPLES)
                .map(|_| {
                    let report = pipeline(threads).optimize(&expr);
                    // Hard determinism check while we're here.
                    assert_eq!(
                        report.best().solution_summary(),
                        serial_report.best().solution_summary(),
                        "{kernel}: parallel solution diverged"
                    );
                    report.total_search_time()
                })
                .collect();
            searches.sort();
            let search = searches[searches.len() / 2];
            let speedup = match serial_search {
                None => {
                    serial_search = Some(search);
                    1.0
                }
                Some(base) => base.as_secs_f64() / search.as_secs_f64(),
            };
            println!(
                "{:<40} search median {:>10.3?}   speedup {:>5.2}x",
                format!("search/{}/{}t", kernel.name(), threads),
                search,
                speedup
            );
        }
    }
}

fn main() {
    bench_table2_blas();
    bench_table3_torch();
    bench_fig4_step();
    bench_parallel_search();
}
