//! The custom kernels of table I.

use std::collections::HashMap;

use liar_ir::{dsl, Expr};
use liar_runtime::{Tensor, Value};

use crate::data::DataGen;
use crate::polybench::{im2col, ref_matmul, ref_matvec, scalar, tensor};

// --- 1mm --------------------------------------------------------------------

/// `1mm`: a single matrix multiplication `A·B` (n×n).
pub mod one_mm {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        dsl::matmat(n, n, n, dsl::sym("A"), dsl::sym("B"))
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [("A".into(), gen.matrix(n, n)), ("B".into(), gen.matrix(n, n))].into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        Ok(Value::from(ref_matmul(
            &tensor(inputs, "A")?,
            &tensor(inputs, "B")?,
        )))
    }
}

// --- axpy -------------------------------------------------------------------

/// `axpy`: vector scaling and addition `α·A + B`.
pub mod axpy {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        dsl::vadd(
            n,
            dsl::vscale(n, dsl::sym("alpha"), dsl::sym("A")),
            dsl::sym("B"),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("alpha".into(), gen.scalar()),
            ("A".into(), gen.vector(n)),
            ("B".into(), gen.vector(n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let alpha = scalar(inputs, "alpha")?;
        let (a, b) = (tensor(inputs, "A")?, tensor(inputs, "B")?);
        let out = a
            .data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| alpha * x + y)
            .collect();
        Ok(Value::from(Tensor::vector(out)))
    }
}

// --- blur1d -----------------------------------------------------------------

/// `blur1d`: a five-point box blur, in im2col form (the cost model's
/// preferred matrix–vector formulation, which the paper notes is slower
/// than the direct loop in practice).
pub mod blur1d {
    use super::*;

    /// Window width.
    pub const W: usize = 5;

    /// The kernel as an IR expression. The input has `n + W - 1` elements.
    pub fn expr(n: usize) -> Expr {
        dsl::matvec(
            n,
            W,
            im2col(n, W, dsl::sym("A")),
            dsl::constvec(W, dsl::num(0.2)),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [("A".into(), gen.vector(n + W - 1))].into()
    }

    /// Reference implementation (direct stencil loop).
    pub fn reference(n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let a = tensor(inputs, "A")?;
        let d = a.data();
        let out = (0..n)
            .map(|i| 0.2 * (d[i] + d[i + 1] + d[i + 2] + d[i + 3] + d[i + 4]))
            .collect();
        Ok(Value::from(Tensor::vector(out)))
    }
}

// --- gemv -------------------------------------------------------------------

/// `gemv`: generalized matrix–vector product `α·A·B + β·C`
/// (the paper's running example, fig. 4).
pub mod gemv {
    use super::*;

    /// The kernel as an IR expression:
    /// `vadd(vscale(α, matvec(A, B)), vscale(β, C))` (§VI).
    pub fn expr(n: usize) -> Expr {
        dsl::vadd(
            n,
            dsl::vscale(
                n,
                dsl::sym("alpha"),
                dsl::matvec(n, n, dsl::sym("A"), dsl::sym("B")),
            ),
            dsl::vscale(n, dsl::sym("beta"), dsl::sym("C")),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("alpha".into(), gen.scalar()),
            ("beta".into(), gen.scalar()),
            ("A".into(), gen.matrix(n, n)),
            ("B".into(), gen.vector(n)),
            ("C".into(), gen.vector(n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let (alpha, beta) = (scalar(inputs, "alpha")?, scalar(inputs, "beta")?);
        let a = tensor(inputs, "A")?;
        let (b, c) = (tensor(inputs, "B")?, tensor(inputs, "C")?);
        let out = ref_matvec(&a, b.data())
            .iter()
            .zip(c.data())
            .map(|(v, ci)| alpha * v + beta * ci)
            .collect();
        Ok(Value::from(Tensor::vector(out)))
    }
}

// --- memset -----------------------------------------------------------------

/// `memset`: zero-vector creation.
pub mod memset {
    use super::*;

    /// The kernel as an IR expression: `build n (λ 0)`.
    pub fn expr(n: usize) -> Expr {
        dsl::constvec(n, dsl::num(0.0))
    }

    /// Deterministic inputs (none).
    pub fn inputs(_n: usize, _gen: &mut DataGen) -> HashMap<String, Value> {
        HashMap::new()
    }

    /// Reference implementation.
    pub fn reference(n: usize, _inputs: &HashMap<String, Value>) -> Result<Value, String> {
        Ok(Value::from(Tensor::vector(vec![0.0; n])))
    }
}

// --- slim-2mm ---------------------------------------------------------------

/// `slim-2mm`: two chained multiplications where the second operand is a
/// vector, `(A·B)·c` — a "slim" variant of 2mm.
pub mod slim_2mm {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        dsl::matvec(
            n,
            n,
            dsl::matmat(n, n, n, dsl::sym("A"), dsl::sym("B")),
            dsl::sym("c"),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("A".into(), gen.matrix(n, n)),
            ("B".into(), gen.matrix(n, n)),
            ("c".into(), gen.vector(n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let ab = ref_matmul(&tensor(inputs, "A")?, &tensor(inputs, "B")?);
        let c = tensor(inputs, "c")?;
        Ok(Value::from(Tensor::vector(ref_matvec(&ab, c.data()))))
    }
}

// --- stencil2d --------------------------------------------------------------

/// `stencil2d`: a stencil over a 2-D image stored flat (row-major), with a
/// three-point window in im2col form over the flattened data. The larger
/// problem size distinguishes it from `jacobi1d`/`blur1d`; like them, the
/// search reduces it to a matrix–vector product via im2col, which is
/// slower than the direct loop (paper §VI-E).
pub mod stencil2d {
    use super::*;

    /// Window width.
    pub const W: usize = 3;

    /// The kernel as an IR expression over an image of `n·n` pixels
    /// (flattened input of `n·n + W - 1` elements).
    pub fn expr(n: usize) -> Expr {
        let len = n * n;
        dsl::matvec(
            len,
            W,
            im2col(len, W, dsl::sym("A")),
            dsl::constvec(W, dsl::num(0.25)),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [("A".into(), gen.vector(n * n + W - 1))].into()
    }

    /// Reference implementation (direct loop).
    pub fn reference(n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let a = tensor(inputs, "A")?;
        let d = a.data();
        let out = (0..n * n)
            .map(|i| 0.25 * (d[i] + d[i + 1] + d[i + 2]))
            .collect();
        Ok(Value::from(Tensor::vector(out)))
    }
}

// --- vsum -------------------------------------------------------------------

/// `vsum`: vector reduction with sum — the paper's motivating example for
/// latent idioms (`sum(v) = dot(v, fill(1))`).
pub mod vsum {
    use super::*;

    /// The kernel as an IR expression: `ifold n 0 (λ λ xs[•1] + •0)`.
    pub fn expr(n: usize) -> Expr {
        dsl::vsum(n, dsl::sym("xs"))
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [("xs".into(), gen.vector(n))].into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let xs = tensor(inputs, "xs")?;
        Ok(Value::Num(xs.data().iter().sum()))
    }
}
