//! Deterministic input generation for the kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use liar_runtime::{Tensor, Value};

/// A seeded generator for kernel inputs.
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// Create a generator from a seed (same seed ⇒ same data).
    pub fn new(seed: u64) -> Self {
        DataGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform scalar in [-1, 1].
    pub fn scalar(&mut self) -> Value {
        Value::Num(self.rng.gen_range(-1.0..1.0))
    }

    /// A vector of length `n` with entries in [-1, 1].
    pub fn vector(&mut self, n: usize) -> Value {
        let data = (0..n).map(|_| self.rng.gen_range(-1.0..1.0)).collect();
        Value::from(Tensor::vector(data))
    }

    /// A row-major `r`×`c` matrix with entries in [-1, 1].
    pub fn matrix(&mut self, r: usize, c: usize) -> Value {
        let data = (0..r * c).map(|_| self.rng.gen_range(-1.0..1.0)).collect();
        Value::from(Tensor::matrix(r, c, data))
    }

    /// A rank-3 tensor.
    pub fn tensor3(&mut self, a: usize, b: usize, c: usize) -> Value {
        let data = (0..a * b * c)
            .map(|_| self.rng.gen_range(-1.0..1.0))
            .collect();
        Value::from(Tensor::new(vec![a, b, c], data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = DataGen::new(7).vector(16).to_tensor().unwrap();
        let b = DataGen::new(7).vector(16).to_tensor().unwrap();
        let c = DataGen::new(8).vector(16).to_tensor().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes() {
        let mut g = DataGen::new(1);
        assert_eq!(g.matrix(2, 3).to_tensor().unwrap().shape(), &[2, 3]);
        assert_eq!(g.tensor3(2, 3, 4).to_tensor().unwrap().shape(), &[2, 3, 4]);
        assert!(g.scalar().as_num().is_some());
    }

    #[test]
    fn values_in_range() {
        let mut g = DataGen::new(2);
        let t = g.vector(100).to_tensor().unwrap();
        assert!(t.data().iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
