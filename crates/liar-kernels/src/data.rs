//! Deterministic input generation for the kernels.

use liar_runtime::{Tensor, Value};

/// A seeded generator for kernel inputs.
///
/// Uses an in-crate splitmix64 generator so that inputs are bit-for-bit
/// reproducible across platforms and toolchains without any external
/// dependency (the workspace builds offline).
#[derive(Debug)]
pub struct DataGen {
    state: u64,
}

impl DataGen {
    /// Create a generator from a seed (same seed ⇒ same data).
    pub fn new(seed: u64) -> Self {
        DataGen { state: seed }
    }

    /// The next raw 64-bit output (splitmix64; Steele et al., OOPSLA 2014).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next uniform float in [-1, 1).
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits give a uniform value in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        2.0 * unit - 1.0
    }

    /// A uniform scalar in [-1, 1].
    pub fn scalar(&mut self) -> Value {
        Value::Num(self.next_f64())
    }

    /// A vector of length `n` with entries in [-1, 1].
    pub fn vector(&mut self, n: usize) -> Value {
        let data = (0..n).map(|_| self.next_f64()).collect();
        Value::from(Tensor::vector(data))
    }

    /// A row-major `r`×`c` matrix with entries in [-1, 1].
    pub fn matrix(&mut self, r: usize, c: usize) -> Value {
        let data = (0..r * c).map(|_| self.next_f64()).collect();
        Value::from(Tensor::matrix(r, c, data))
    }

    /// A rank-3 tensor.
    pub fn tensor3(&mut self, a: usize, b: usize, c: usize) -> Value {
        let data = (0..a * b * c).map(|_| self.next_f64()).collect();
        Value::from(Tensor::new(vec![a, b, c], data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = DataGen::new(7).vector(16).to_tensor().unwrap();
        let b = DataGen::new(7).vector(16).to_tensor().unwrap();
        let c = DataGen::new(8).vector(16).to_tensor().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shapes() {
        let mut g = DataGen::new(1);
        assert_eq!(g.matrix(2, 3).to_tensor().unwrap().shape(), &[2, 3]);
        assert_eq!(g.tensor3(2, 3, 4).to_tensor().unwrap().shape(), &[2, 3, 4]);
        assert!(g.scalar().as_num().is_some());
    }

    #[test]
    fn values_in_range() {
        let mut g = DataGen::new(2);
        let t = g.vector(100).to_tensor().unwrap();
        assert!(t.data().iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
