//! The [`Kernel`] enum: uniform access to all sixteen evaluation kernels.

use std::collections::HashMap;

use liar_ir::Expr;
use liar_runtime::Value;

use crate::data::DataGen;
use crate::{custom, polybench};

/// Which benchmark suite a kernel comes from (table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Suite {
    /// PolyBench/C 4.2.1-beta.
    PolyBench,
    /// Hand-written kernels evaluating specific tasks.
    Custom,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::PolyBench => write!(f, "PolyBench"),
            Suite::Custom => write!(f, "Custom"),
        }
    }
}

/// One of the sixteen kernels of table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kernel {
    /// Two generalized matrix multiplications.
    TwoMm,
    /// Matrix transpose and vector multiplication.
    Atax,
    /// Multiresolution analysis kernel (MADNESS).
    Doitgen,
    /// Generalized matrix product.
    Gemm,
    /// Vector multiplication and matrix addition.
    Gemver,
    /// Scalar, vector and matrix multiplication.
    Gesummv,
    /// 1-D Jacobi stencil computation.
    Jacobi1d,
    /// Matrix–vector product and transpose.
    Mvt,
    /// One matrix multiplication.
    OneMm,
    /// Vector scaling and addition.
    Axpy,
    /// 1-D stencil.
    Blur1d,
    /// Generalized matrix–vector product.
    Gemv,
    /// Zero vector creation.
    Memset,
    /// Two matrix multiplications (slim).
    Slim2mm,
    /// 2-D stencil.
    Stencil2d,
    /// Vector reduction with sum.
    Vsum,
}

impl Kernel {
    /// All kernels in the paper's table order (PolyBench first).
    pub const ALL: [Kernel; 16] = [
        Kernel::TwoMm,
        Kernel::Atax,
        Kernel::Doitgen,
        Kernel::Gemm,
        Kernel::Gemver,
        Kernel::Gesummv,
        Kernel::Jacobi1d,
        Kernel::Mvt,
        Kernel::OneMm,
        Kernel::Axpy,
        Kernel::Blur1d,
        Kernel::Gemv,
        Kernel::Memset,
        Kernel::Slim2mm,
        Kernel::Stencil2d,
        Kernel::Vsum,
    ];

    /// The kernel's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::TwoMm => "2mm",
            Kernel::Atax => "atax",
            Kernel::Doitgen => "doitgen",
            Kernel::Gemm => "gemm",
            Kernel::Gemver => "gemver",
            Kernel::Gesummv => "gesummv",
            Kernel::Jacobi1d => "jacobi1d",
            Kernel::Mvt => "mvt",
            Kernel::OneMm => "1mm",
            Kernel::Axpy => "axpy",
            Kernel::Blur1d => "blur1d",
            Kernel::Gemv => "gemv",
            Kernel::Memset => "memset",
            Kernel::Slim2mm => "slim-2mm",
            Kernel::Stencil2d => "stencil2d",
            Kernel::Vsum => "vsum",
        }
    }

    /// Look up a kernel by its paper name.
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The suite the kernel comes from.
    pub fn suite(self) -> Suite {
        match self {
            Kernel::TwoMm
            | Kernel::Atax
            | Kernel::Doitgen
            | Kernel::Gemm
            | Kernel::Gemver
            | Kernel::Gesummv
            | Kernel::Jacobi1d
            | Kernel::Mvt => Suite::PolyBench,
            _ => Suite::Custom,
        }
    }

    /// Table I's one-line description.
    pub fn description(self) -> &'static str {
        match self {
            Kernel::TwoMm => "Two generalized matrix multiplications",
            Kernel::Atax => "Matrix transpose and vector multiplication",
            Kernel::Doitgen => "Multiresolution analysis kernel (MADNESS)",
            Kernel::Gemm => "Generalized matrix product",
            Kernel::Gemver => "Vector multiplication and matrix addition",
            Kernel::Gesummv => "Scalar, vector and matrix multiplication",
            Kernel::Jacobi1d => "1D Jacobi stencil computation",
            Kernel::Mvt => "Matrix-vector product and transpose",
            Kernel::OneMm => "One matrix multiplication",
            Kernel::Axpy => "Vector scaling and addition",
            Kernel::Blur1d => "1D stencil",
            Kernel::Gemv => "Generalized matrix-vector product",
            Kernel::Memset => "Zero vector creation",
            Kernel::Slim2mm => "Two matrix multiplications",
            Kernel::Stencil2d => "2D stencil",
            Kernel::Vsum => "Vector reduction with sum",
        }
    }

    /// The kernel expressed in the minimalist IR at problem size `n`.
    pub fn expr(self, n: usize) -> Expr {
        match self {
            Kernel::TwoMm => polybench::two_mm::expr(n),
            Kernel::Atax => polybench::atax::expr(n),
            Kernel::Doitgen => polybench::doitgen::expr(n),
            Kernel::Gemm => polybench::gemm::expr(n),
            Kernel::Gemver => polybench::gemver::expr(n),
            Kernel::Gesummv => polybench::gesummv::expr(n),
            Kernel::Jacobi1d => polybench::jacobi1d::expr(n),
            Kernel::Mvt => polybench::mvt::expr(n),
            Kernel::OneMm => custom::one_mm::expr(n),
            Kernel::Axpy => custom::axpy::expr(n),
            Kernel::Blur1d => custom::blur1d::expr(n),
            Kernel::Gemv => custom::gemv::expr(n),
            Kernel::Memset => custom::memset::expr(n),
            Kernel::Slim2mm => custom::slim_2mm::expr(n),
            Kernel::Stencil2d => custom::stencil2d::expr(n),
            Kernel::Vsum => custom::vsum::expr(n),
        }
    }

    /// Deterministic inputs for problem size `n` and a seed.
    pub fn inputs(self, n: usize, seed: u64) -> HashMap<String, Value> {
        let mut gen = DataGen::new(seed);
        match self {
            Kernel::TwoMm => polybench::two_mm::inputs(n, &mut gen),
            Kernel::Atax => polybench::atax::inputs(n, &mut gen),
            Kernel::Doitgen => polybench::doitgen::inputs(n, &mut gen),
            Kernel::Gemm => polybench::gemm::inputs(n, &mut gen),
            Kernel::Gemver => polybench::gemver::inputs(n, &mut gen),
            Kernel::Gesummv => polybench::gesummv::inputs(n, &mut gen),
            Kernel::Jacobi1d => polybench::jacobi1d::inputs(n, &mut gen),
            Kernel::Mvt => polybench::mvt::inputs(n, &mut gen),
            Kernel::OneMm => custom::one_mm::inputs(n, &mut gen),
            Kernel::Axpy => custom::axpy::inputs(n, &mut gen),
            Kernel::Blur1d => custom::blur1d::inputs(n, &mut gen),
            Kernel::Gemv => custom::gemv::inputs(n, &mut gen),
            Kernel::Memset => custom::memset::inputs(n, &mut gen),
            Kernel::Slim2mm => custom::slim_2mm::inputs(n, &mut gen),
            Kernel::Stencil2d => custom::stencil2d::inputs(n, &mut gen),
            Kernel::Vsum => custom::vsum::inputs(n, &mut gen),
        }
    }

    /// The hand-written reference implementation (fig. 7's baseline).
    ///
    /// # Errors
    ///
    /// Returns a message when an expected input is missing or malformed.
    pub fn reference(
        self,
        n: usize,
        inputs: &HashMap<String, Value>,
    ) -> Result<Value, String> {
        match self {
            Kernel::TwoMm => polybench::two_mm::reference(n, inputs),
            Kernel::Atax => polybench::atax::reference(n, inputs),
            Kernel::Doitgen => polybench::doitgen::reference(n, inputs),
            Kernel::Gemm => polybench::gemm::reference(n, inputs),
            Kernel::Gemver => polybench::gemver::reference(n, inputs),
            Kernel::Gesummv => polybench::gesummv::reference(n, inputs),
            Kernel::Jacobi1d => polybench::jacobi1d::reference(n, inputs),
            Kernel::Mvt => polybench::mvt::reference(n, inputs),
            Kernel::OneMm => custom::one_mm::reference(n, inputs),
            Kernel::Axpy => custom::axpy::reference(n, inputs),
            Kernel::Blur1d => custom::blur1d::reference(n, inputs),
            Kernel::Gemv => custom::gemv::reference(n, inputs),
            Kernel::Memset => custom::memset::reference(n, inputs),
            Kernel::Slim2mm => custom::slim_2mm::reference(n, inputs),
            Kernel::Stencil2d => custom::stencil2d::reference(n, inputs),
            Kernel::Vsum => custom::vsum::reference(n, inputs),
        }
    }

    /// A problem size at which saturation stays fast (tests, table
    /// generation — solutions are size-independent in structure).
    pub fn search_size(self) -> usize {
        8
    }

    /// A problem size for run-time experiments (figs. 6–7).
    pub fn bench_size(self) -> usize {
        match self {
            // O(n⁴) when interpreted: keep modest.
            Kernel::Doitgen => 48,
            // O(n³) kernels.
            Kernel::TwoMm | Kernel::Gemm | Kernel::OneMm | Kernel::Slim2mm => 96,
            // O(n²) kernels.
            Kernel::Atax | Kernel::Gemver | Kernel::Gesummv | Kernel::Mvt | Kernel::Gemv => 256,
            Kernel::Stencil2d => 128,
            // O(n) kernels.
            Kernel::Jacobi1d | Kernel::Blur1d | Kernel::Axpy | Kernel::Memset | Kernel::Vsum => {
                16_384
            }
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Approximate equality on runtime values: tuples componentwise,
/// everything else via flattening to tensors (so nested arrays and dense
/// tensors of the same contents compare equal).
pub fn values_approx_eq(a: &Value, b: &Value, tol: f64) -> bool {
    match (a, b) {
        (Value::Tuple(p), Value::Tuple(q)) => {
            values_approx_eq(&p.0, &q.0, tol) && values_approx_eq(&p.1, &q.1, tol)
        }
        _ => match (a.to_tensor(), b.to_tensor()) {
            (Some(x), Some(y)) => x.approx_eq(&y, tol),
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liar_runtime::eval;

    #[test]
    fn names_roundtrip() {
        for k in Kernel::ALL {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        assert_eq!(Kernel::from_name("nope"), None);
    }

    #[test]
    fn table_one_has_eight_per_suite() {
        let poly = Kernel::ALL
            .iter()
            .filter(|k| k.suite() == Suite::PolyBench)
            .count();
        assert_eq!(poly, 8);
        assert_eq!(Kernel::ALL.len() - poly, 8);
    }

    #[test]
    fn every_kernel_evaluates_and_matches_its_reference() {
        for k in Kernel::ALL {
            let n = k.search_size();
            let inputs = k.inputs(n, 0xC60);
            let expr = k.expr(n);
            let computed = eval(&expr, &inputs)
                .unwrap_or_else(|e| panic!("{k}: evaluation failed: {e}"));
            let reference = k
                .reference(n, &inputs)
                .unwrap_or_else(|e| panic!("{k}: reference failed: {e}"));
            assert!(
                values_approx_eq(&computed, &reference, 1e-9),
                "{k}: IR and reference disagree"
            );
        }
    }

    #[test]
    fn kernel_expressions_are_closed() {
        for k in Kernel::ALL {
            let expr = k.expr(k.search_size());
            assert!(
                liar_ir::debruijn::free_vars(&expr).is_empty(),
                "{k} has free variables"
            );
        }
    }

    #[test]
    fn inputs_are_seed_deterministic() {
        let a = Kernel::Gemv.inputs(8, 1);
        let b = Kernel::Gemv.inputs(8, 1);
        for (k, v) in &a {
            assert!(values_approx_eq(v, &b[k], 0.0), "{k} differs");
        }
    }

    #[test]
    fn expressions_parse_back() {
        for k in Kernel::ALL {
            let expr = k.expr(4);
            let reparsed: Expr = expr.to_string().parse().unwrap();
            assert_eq!(reparsed, expr, "{k} text roundtrip");
        }
    }
}
