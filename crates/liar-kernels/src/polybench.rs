//! The PolyBench/C kernels of table I, as IR expressions plus reference
//! implementations in the style of the original C benchmarks.
//!
//! Kernels are "expressed by composing build-ifold implementations of the
//! respective mathematical operators" (§VI): `vadd`, `vscale`, `matvec`,
//! `dot`, `matmat` (with its explicit transpose build), and outer products.
//! `doitgen` and `gemver` are direct loop translations, as in the paper.

use std::collections::HashMap;

use liar_ir::{dsl, Expr};
use liar_runtime::{Tensor, Value};

use crate::data::DataGen;

pub(crate) fn tensor(
    inputs: &HashMap<String, Value>,
    name: &str,
) -> Result<Tensor, String> {
    inputs
        .get(name)
        .ok_or_else(|| format!("missing input {name}"))?
        .to_tensor()
        .ok_or_else(|| format!("input {name} is not a tensor"))
}

pub(crate) fn scalar(inputs: &HashMap<String, Value>, name: &str) -> Result<f64, String> {
    Ok(tensor(inputs, name)?.as_scalar())
}

/// Naive reference matrix product `A·B` (n×k · k×m).
pub(crate) fn ref_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (n, k) = (a.shape()[0], a.shape()[1]);
    let m = b.shape()[1];
    assert_eq!(b.shape()[0], k);
    let mut out = vec![0.0; n * m];
    for i in 0..n {
        for j in 0..m {
            let mut acc = 0.0;
            for s in 0..k {
                acc += a.data()[i * k + s] * b.data()[s * m + j];
            }
            out[i * m + j] = acc;
        }
    }
    Tensor::matrix(n, m, out)
}

/// Naive reference matrix–vector product `A·x`.
pub(crate) fn ref_matvec(a: &Tensor, x: &[f64]) -> Vec<f64> {
    let (n, m) = (a.shape()[0], a.shape()[1]);
    assert_eq!(x.len(), m);
    (0..n)
        .map(|i| {
            let row = &a.data()[i * m..(i + 1) * m];
            row.iter().zip(x).map(|(aij, xj)| aij * xj).sum()
        })
        .collect()
}

pub(crate) fn ref_transpose(a: &Tensor) -> Tensor {
    let (n, m) = (a.shape()[0], a.shape()[1]);
    let mut out = vec![0.0; n * m];
    for i in 0..n {
        for j in 0..m {
            out[j * n + i] = a.data()[i * m + j];
        }
    }
    Tensor::matrix(m, n, out)
}

pub(crate) fn ref_scale(alpha: f64, a: &Tensor) -> Tensor {
    Tensor::new(
        a.shape().to_vec(),
        a.data().iter().map(|v| alpha * v).collect(),
    )
}

pub(crate) fn ref_add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape());
    Tensor::new(
        a.shape().to_vec(),
        a.data().iter().zip(b.data()).map(|(x, y)| x + y).collect(),
    )
}

/// An outer product `u·vᵀ` as nested builds.
fn outer(n: usize, u: Expr, v: Expr) -> Expr {
    let (u2, v2) = (
        liar_ir::debruijn::shift_up(&u, 2),
        liar_ir::debruijn::shift_up(&v, 2),
    );
    dsl::build(
        n,
        dsl::lam(dsl::build(
            n,
            dsl::lam(dsl::mul(
                dsl::get(u2, dsl::var(1)),
                dsl::get(v2, dsl::var(0)),
            )),
        )),
    )
}

/// An im2col matrix for a 1-D window: `build n (λ build w (λ a[•1 + •0]))`.
pub(crate) fn im2col(n: usize, w: usize, a: Expr) -> Expr {
    let a2 = liar_ir::debruijn::shift_up(&a, 2);
    dsl::build(
        n,
        dsl::lam(dsl::build(
            w,
            dsl::lam(dsl::get(a2, dsl::add(dsl::var(1), dsl::var(0)))),
        )),
    )
}

// --- 2mm -----------------------------------------------------------------

/// `2mm`: two generalized matrix multiplications,
/// `out = (α·A·B)·C + β·D` with all matrices n×n.
pub mod two_mm {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        let tmp = dsl::mscale(
            n,
            n,
            dsl::sym("alpha"),
            dsl::matmat(n, n, n, dsl::sym("A"), dsl::sym("B")),
        );
        dsl::madd(
            n,
            n,
            dsl::matmat(n, n, n, tmp, dsl::sym("C")),
            dsl::mscale(n, n, dsl::sym("beta"), dsl::sym("D")),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("alpha".into(), gen.scalar()),
            ("beta".into(), gen.scalar()),
            ("A".into(), gen.matrix(n, n)),
            ("B".into(), gen.matrix(n, n)),
            ("C".into(), gen.matrix(n, n)),
            ("D".into(), gen.matrix(n, n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let (alpha, beta) = (scalar(inputs, "alpha")?, scalar(inputs, "beta")?);
        let (a, b) = (tensor(inputs, "A")?, tensor(inputs, "B")?);
        let (c, d) = (tensor(inputs, "C")?, tensor(inputs, "D")?);
        let tmp = ref_scale(alpha, &ref_matmul(&a, &b));
        Ok(Value::from(ref_add(
            &ref_matmul(&tmp, &c),
            &ref_scale(beta, &d),
        )))
    }
}

// --- atax ----------------------------------------------------------------

/// `atax`: `y = Aᵀ(A·x)` with A n×n.
pub mod atax {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        dsl::matvec(
            n,
            n,
            dsl::transposeb(n, n, dsl::sym("A")),
            dsl::matvec(n, n, dsl::sym("A"), dsl::sym("x")),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [("A".into(), gen.matrix(n, n)), ("x".into(), gen.vector(n))].into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let a = tensor(inputs, "A")?;
        let x = tensor(inputs, "x")?;
        let ax = ref_matvec(&a, x.data());
        let at = ref_transpose(&a);
        Ok(Value::from(Tensor::vector(ref_matvec(&at, &ax))))
    }
}

// --- doitgen ---------------------------------------------------------------

/// `doitgen`: multiresolution analysis kernel,
/// `sum[r][q][p] = Σ_s A[r][q][s]·C4[s][p]`, translated directly as a
/// build over per-slice matrix products.
pub mod doitgen {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        let a1 = liar_ir::debruijn::shift_up(&dsl::sym("A"), 1);
        let c41 = liar_ir::debruijn::shift_up(&dsl::sym("C4"), 1);
        dsl::build(
            n,
            dsl::lam(dsl::matmat(n, n, n, dsl::get(a1, dsl::var(0)), c41)),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("A".into(), gen.tensor3(n, n, n)),
            ("C4".into(), gen.matrix(n, n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let a = tensor(inputs, "A")?;
        let c4 = tensor(inputs, "C4")?;
        let mut out = Vec::with_capacity(n * n * n);
        for r in 0..n {
            let slice = a.slice(r);
            out.extend_from_slice(ref_matmul(&slice, &c4).data());
        }
        Ok(Value::from(Tensor::new(vec![n, n, n], out)))
    }
}

// --- gemm ------------------------------------------------------------------

/// `gemm`: `out = α·A·B + β·C` with all matrices n×n.
pub mod gemm {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        dsl::madd(
            n,
            n,
            dsl::mscale(
                n,
                n,
                dsl::sym("alpha"),
                dsl::matmat(n, n, n, dsl::sym("A"), dsl::sym("B")),
            ),
            dsl::mscale(n, n, dsl::sym("beta"), dsl::sym("C")),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("alpha".into(), gen.scalar()),
            ("beta".into(), gen.scalar()),
            ("A".into(), gen.matrix(n, n)),
            ("B".into(), gen.matrix(n, n)),
            ("C".into(), gen.matrix(n, n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let (alpha, beta) = (scalar(inputs, "alpha")?, scalar(inputs, "beta")?);
        let (a, b, c) = (
            tensor(inputs, "A")?,
            tensor(inputs, "B")?,
            tensor(inputs, "C")?,
        );
        Ok(Value::from(ref_add(
            &ref_scale(alpha, &ref_matmul(&a, &b)),
            &ref_scale(beta, &c),
        )))
    }
}

// --- gemver ----------------------------------------------------------------

/// `gemver`: vector multiplication and matrix addition,
/// `A2 = A + u1·v1ᵀ + u2·v2ᵀ; x = β·A2ᵀ·y + z; w = α·A2·x` (output `w`).
pub mod gemver {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        let a2 = dsl::madd(
            n,
            n,
            dsl::madd(
                n,
                n,
                dsl::sym("A"),
                outer(n, dsl::sym("u1"), dsl::sym("v1")),
            ),
            outer(n, dsl::sym("u2"), dsl::sym("v2")),
        );
        let x = dsl::vadd(
            n,
            dsl::vscale(
                n,
                dsl::sym("beta"),
                dsl::matvec(n, n, dsl::transposeb(n, n, a2.clone()), dsl::sym("y")),
            ),
            dsl::sym("z"),
        );
        dsl::vscale(n, dsl::sym("alpha"), dsl::matvec(n, n, a2, x))
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("alpha".into(), gen.scalar()),
            ("beta".into(), gen.scalar()),
            ("A".into(), gen.matrix(n, n)),
            ("u1".into(), gen.vector(n)),
            ("v1".into(), gen.vector(n)),
            ("u2".into(), gen.vector(n)),
            ("v2".into(), gen.vector(n)),
            ("y".into(), gen.vector(n)),
            ("z".into(), gen.vector(n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let (alpha, beta) = (scalar(inputs, "alpha")?, scalar(inputs, "beta")?);
        let a = tensor(inputs, "A")?;
        let (u1, v1) = (tensor(inputs, "u1")?, tensor(inputs, "v1")?);
        let (u2, v2) = (tensor(inputs, "u2")?, tensor(inputs, "v2")?);
        let (y, z) = (tensor(inputs, "y")?, tensor(inputs, "z")?);
        let mut a2 = a.data().to_vec();
        for i in 0..n {
            for j in 0..n {
                a2[i * n + j] += u1.data()[i] * v1.data()[j] + u2.data()[i] * v2.data()[j];
            }
        }
        let a2 = Tensor::matrix(n, n, a2);
        let a2t = ref_transpose(&a2);
        let x: Vec<f64> = ref_matvec(&a2t, y.data())
            .iter()
            .zip(z.data())
            .map(|(v, zi)| beta * v + zi)
            .collect();
        let w: Vec<f64> = ref_matvec(&a2, &x).iter().map(|v| alpha * v).collect();
        Ok(Value::from(Tensor::vector(w)))
    }
}

// --- gesummv ---------------------------------------------------------------

/// `gesummv`: `y = α·A·x + β·B·x`.
pub mod gesummv {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        dsl::vadd(
            n,
            dsl::vscale(
                n,
                dsl::sym("alpha"),
                dsl::matvec(n, n, dsl::sym("A"), dsl::sym("x")),
            ),
            dsl::vscale(
                n,
                dsl::sym("beta"),
                dsl::matvec(n, n, dsl::sym("B"), dsl::sym("x")),
            ),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("alpha".into(), gen.scalar()),
            ("beta".into(), gen.scalar()),
            ("A".into(), gen.matrix(n, n)),
            ("B".into(), gen.matrix(n, n)),
            ("x".into(), gen.vector(n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let (alpha, beta) = (scalar(inputs, "alpha")?, scalar(inputs, "beta")?);
        let (a, b, x) = (
            tensor(inputs, "A")?,
            tensor(inputs, "B")?,
            tensor(inputs, "x")?,
        );
        let out: Vec<f64> = ref_matvec(&a, x.data())
            .iter()
            .zip(ref_matvec(&b, x.data()))
            .map(|(p, q)| alpha * p + beta * q)
            .collect();
        Ok(Value::from(Tensor::vector(out)))
    }
}

// --- jacobi1d ---------------------------------------------------------------

/// `jacobi1d`: one sweep of the 1-D Jacobi stencil,
/// `out[i] = (A[i] + A[i+1] + A[i+2])/3`, written in im2col form (a window
/// matrix dotted with a constant weight vector) — which is how the
/// equality-saturation search can see the latent matrix–vector product the
/// paper reports (gemv/mv + constant-vector solutions).
pub mod jacobi1d {
    use super::*;

    /// Window width.
    pub const W: usize = 3;

    /// The kernel as an IR expression. The input has `n + W - 1` elements.
    pub fn expr(n: usize) -> Expr {
        dsl::matvec(
            n,
            W,
            im2col(n, W, dsl::sym("A")),
            dsl::constvec(W, dsl::num(0.33333)),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [("A".into(), gen.vector(n + W - 1))].into()
    }

    /// Reference implementation (direct stencil loop).
    pub fn reference(n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let a = tensor(inputs, "A")?;
        let d = a.data();
        let out = (0..n)
            .map(|i| 0.33333 * (d[i] + d[i + 1] + d[i + 2]))
            .collect();
        Ok(Value::from(Tensor::vector(out)))
    }
}

// --- mvt --------------------------------------------------------------------

/// `mvt`: matrix–vector product and transpose,
/// `x1' = x1 + A·y1; x2' = x2 + Aᵀ·y2` (a tuple of both results).
pub mod mvt {
    use super::*;

    /// The kernel as an IR expression.
    pub fn expr(n: usize) -> Expr {
        dsl::tuple(
            dsl::vadd(n, dsl::sym("x1"), dsl::matvec(n, n, dsl::sym("A"), dsl::sym("y1"))),
            dsl::vadd(
                n,
                dsl::sym("x2"),
                dsl::matvec(n, n, dsl::transposeb(n, n, dsl::sym("A")), dsl::sym("y2")),
            ),
        )
    }

    /// Deterministic inputs.
    pub fn inputs(n: usize, gen: &mut DataGen) -> HashMap<String, Value> {
        [
            ("A".into(), gen.matrix(n, n)),
            ("x1".into(), gen.vector(n)),
            ("x2".into(), gen.vector(n)),
            ("y1".into(), gen.vector(n)),
            ("y2".into(), gen.vector(n)),
        ]
        .into()
    }

    /// Reference implementation.
    pub fn reference(_n: usize, inputs: &HashMap<String, Value>) -> Result<Value, String> {
        let a = tensor(inputs, "A")?;
        let (x1, x2) = (tensor(inputs, "x1")?, tensor(inputs, "x2")?);
        let (y1, y2) = (tensor(inputs, "y1")?, tensor(inputs, "y2")?);
        let r1: Vec<f64> = ref_matvec(&a, y1.data())
            .iter()
            .zip(x1.data())
            .map(|(v, x)| x + v)
            .collect();
        let at = ref_transpose(&a);
        let r2: Vec<f64> = ref_matvec(&at, y2.data())
            .iter()
            .zip(x2.data())
            .map(|(v, x)| x + v)
            .collect();
        Ok(Value::Tuple(std::rc::Rc::new((
            Value::from(Tensor::vector(r1)),
            Value::from(Tensor::vector(r2)),
        ))))
    }
}
