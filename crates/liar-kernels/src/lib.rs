//! The computational kernels of the paper's evaluation (table I): eight
//! PolyBench/C kernels and eight custom kernels, each provided as
//!
//! * an IR expression composed from build/ifold implementations of the
//!   mathematical operators (`vadd`, `vscale`, `matvec`, `dot`, …), exactly
//!   as §VI describes;
//! * deterministic input generation;
//! * a hand-written Rust *reference implementation* in the style of the
//!   PolyBench C originals (the baseline of fig. 7).
//!
//! ```
//! use liar_kernels::Kernel;
//! use liar_runtime::eval;
//!
//! let kernel = Kernel::Vsum;
//! let n = 16;
//! let inputs = kernel.inputs(n, 42);
//! let expr = kernel.expr(n);
//! let computed = eval(&expr, &inputs).unwrap();
//! let reference = kernel.reference(n, &inputs).unwrap();
//! assert!(liar_kernels::values_approx_eq(&computed, &reference, 1e-6));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod custom;
pub mod data;
pub mod polybench;

mod kernel;

pub use kernel::{values_approx_eq, Kernel, Suite};
