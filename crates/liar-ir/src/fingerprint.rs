//! Content-addressed fingerprints of IR terms.
//!
//! A [`ContentHash`] is a stable 128-bit structural hash of a term: two
//! [`Expr`]s get the same hash exactly when they denote the same tree,
//! regardless of how their flat node tables happen to be laid out (shared
//! versus repeated subtrees, insertion order). It is the first component
//! of the request fingerprints that `liar-core`'s saturation cache and the
//! `liar-serve` daemon key on, so its definition is part of the wire
//! contract and must stay stable across processes and platforms:
//!
//! * every node is encoded as an explicit byte sequence (a variant tag
//!   byte plus the payload `ArrayLang::matches` compares — no
//!   [`std::hash::Hasher`] involved, whose output the standard library
//!   does not promise to keep stable);
//! * child hashes are folded in **in order**, so `(- a b)` and `(- b a)`
//!   differ;
//! * the mixer is FNV-1a/128, byte at a time.
//!
//! Because [`crate::Num`] normalizes `-0.0` to `0.0` at construction and
//! the parser rejects NaN, numerically equal constants hash equally and
//! every hashable term round-trips through the textual syntax.
//!
//! ```
//! use liar_ir::{dsl, ContentAddressed, Expr};
//!
//! let a = dsl::vsum(64, dsl::sym("xs"));
//! let b: Expr = a.to_string().parse().unwrap();
//! assert_eq!(a.content_hash(), b.content_hash());
//! assert_ne!(a.content_hash(), dsl::vsum(65, dsl::sym("xs")).content_hash());
//! ```

use liar_egraph::Language;

use crate::{ArrayLang, Expr, LibFn};

/// FNV-1a offset basis, 128-bit variant.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// FNV-1a prime, 128-bit variant.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A byte-at-a-time FNV-1a/128 accumulator with a stable, documented
/// output — the mixer behind [`ContentHash`] and the request fingerprints
/// `liar-core` builds on top of it.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher(u128);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh accumulator at the FNV-1a/128 offset basis.
    pub fn new() -> Self {
        StableHasher(FNV_OFFSET)
    }

    /// Mix in one byte.
    pub fn byte(&mut self, b: u8) {
        self.0 ^= b as u128;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// Mix in a byte slice (not length-prefixed; prefix explicitly when
    /// concatenation ambiguity matters).
    pub fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Mix in a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Mix in a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Mix in a `u128` (little-endian).
    pub fn u128(&mut self, v: u128) {
        self.bytes(&v.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(self) -> u128 {
        self.0
    }
}

/// Alias kept for the node encoder below.
use StableHasher as Fnv;

/// A stable 128-bit structural hash of a term (see the module docs).
///
/// Displays as 32 lowercase hex digits — the form the serve protocol and
/// cache logs print.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentHash(pub u128);

impl std::fmt::Display for ContentHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Stable variant tag for the encoding. New variants must be appended,
/// never renumbered — renumbering silently invalidates every persisted
/// fingerprint.
fn tag(node: &ArrayLang) -> u8 {
    match node {
        ArrayLang::Dim(_) => 0,
        ArrayLang::Const(_) => 1,
        ArrayLang::Sym(_) => 2,
        ArrayLang::Var(_) => 3,
        ArrayLang::Lam(_) => 4,
        ArrayLang::App(_) => 5,
        ArrayLang::Build(_) => 6,
        ArrayLang::Get(_) => 7,
        ArrayLang::IFold(_) => 8,
        ArrayLang::Tuple(_) => 9,
        ArrayLang::Fst(_) => 10,
        ArrayLang::Snd(_) => 11,
        ArrayLang::Add(_) => 12,
        ArrayLang::Sub(_) => 13,
        ArrayLang::Mul(_) => 14,
        ArrayLang::Div(_) => 15,
        ArrayLang::Gt(_) => 16,
        ArrayLang::Call(..) => 17,
    }
}

/// Stable index of a library function (its position in [`LibFn::ALL`]).
fn libfn_code(f: LibFn) -> u8 {
    LibFn::ALL
        .iter()
        .position(|g| *g == f)
        .expect("LibFn::ALL is total") as u8
}

/// Hash one node given the already-computed hashes of its children.
fn node_hash(node: &ArrayLang, child_hash: &[u128]) -> u128 {
    let mut h = Fnv::new();
    h.byte(tag(node));
    match node {
        ArrayLang::Dim(n) => h.u64(*n as u64),
        ArrayLang::Const(c) => h.u64(c.get().to_bits()),
        ArrayLang::Sym(s) => {
            h.u64(s.len() as u64);
            h.bytes(s.as_bytes());
        }
        ArrayLang::Var(i) => h.u32(*i),
        ArrayLang::Call(f, args) => {
            h.byte(libfn_code(*f));
            h.u64(args.len() as u64);
        }
        _ => {}
    }
    for c in node.children() {
        h.u128(child_hash[c.index()]);
    }
    h.finish()
}

/// Terms that have a stable content-addressed hash.
pub trait ContentAddressed {
    /// The stable structural hash of this term (see the module docs).
    fn content_hash(&self) -> ContentHash;
}

impl ContentAddressed for Expr {
    fn content_hash(&self) -> ContentHash {
        // Bottom-up over the post-order table: children precede parents,
        // so every child hash is ready when its parent needs it, and no
        // recursion depth limit applies.
        let mut hashes = Vec::with_capacity(self.len());
        for node in self.nodes() {
            let h = node_hash(node, &hashes);
            hashes.push(h);
        }
        match hashes.last() {
            // The root hash identifies the whole tree; an extra tag keeps
            // the empty expression distinct from any real term.
            Some(&root) => ContentHash(root),
            None => ContentHash(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl;

    #[test]
    fn structurally_equal_terms_hash_equal() {
        let a = dsl::vsum(32, dsl::sym("xs"));
        let b: Expr = a.to_string().parse().unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn layout_does_not_matter() {
        // `(+ xs xs)` with a shared `xs` node versus a repeated one.
        let mut shared = Expr::default();
        let x = shared.add(ArrayLang::Sym("xs".into()));
        shared.add(ArrayLang::Add([x, x]));
        let mut repeated = Expr::default();
        let x1 = repeated.add(ArrayLang::Sym("xs".into()));
        let x2 = repeated.add(ArrayLang::Sym("xs".into()));
        repeated.add(ArrayLang::Add([x1, x2]));
        assert_eq!(shared.content_hash(), repeated.content_hash());
    }

    #[test]
    fn different_terms_hash_differently() {
        let pairs = [
            ("(+ a b)", "(+ b a)"),
            ("(+ a b)", "(- a b)"),
            ("(dot #8 a b)", "(dot #9 a b)"),
            ("(lam %0)", "(lam %1)"),
            ("1.5", "-1.5"),
            ("x", "y"),
        ];
        for (l, r) in pairs {
            let l: Expr = l.parse().unwrap();
            let r: Expr = r.parse().unwrap();
            assert_ne!(l.content_hash(), r.content_hash(), "{l} vs {r}");
        }
    }

    #[test]
    fn negative_zero_collides_with_zero() {
        // Num normalizes -0.0 at construction, so the two parse to the
        // same constant and must hash equal.
        let a: Expr = "0".parse().unwrap();
        let b = dsl::num(-0.0);
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn libfn_codes_are_distinct() {
        let mut codes: Vec<u8> = LibFn::ALL.iter().map(|f| libfn_code(*f)).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), LibFn::ALL.len());
    }

    #[test]
    fn known_vector_is_stable() {
        // Pin the encoding: if this changes, the wire contract changed.
        let e: Expr = "(dot #8 xs ys)".parse().unwrap();
        let h1 = e.content_hash();
        let h2 = e.content_hash();
        assert_eq!(h1, h2);
        assert_eq!(h1.to_string().len(), 32);
        assert_ne!(h1, ContentHash(0));
    }
}
