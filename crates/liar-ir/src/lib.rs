//! LIAR's minimalist functional array IR (paper §IV).
//!
//! The IR has four classes of primitives (fig. 3 of the paper):
//!
//! * λ-calculus with De Bruijn indices: [`ArrayLang::Lam`], [`ArrayLang::App`],
//!   [`ArrayLang::Var`] (written `%i` in the textual syntax, `•i` in the
//!   paper);
//! * three fundamental array operations: [`ArrayLang::Build`],
//!   [`ArrayLang::Get`] (indexing) and [`ArrayLang::IFold`];
//! * binary tuples: [`ArrayLang::Tuple`], [`ArrayLang::Fst`], [`ArrayLang::Snd`];
//! * named function calls: scalar arithmetic ([`ArrayLang::Add`] …) and
//!   library calls ([`ArrayLang::Call`] with a [`LibFn`]).
//!
//! Array extents are compile-time constants carried as [`ArrayLang::Dim`]
//! leaves (`#n`), so rewrite rules can bind and move them like any other
//! child and cost models can read `N`, `M`, `K` without a type system.
//!
//! Terms are [`liar_egraph::RecExpr`]s over [`ArrayLang`]; the [`debruijn`]
//! module implements the shift (`↑`) and substitution operators of §IV.B.3,
//! and [`analysis::ArrayAnalysis`] makes the IR binder-aware inside e-graphs
//! (free-variable tracking + the downshift extraction that shift patterns
//! like `A↑↑` need).
//!
//! # Example
//!
//! ```
//! use liar_ir::{Expr, dsl};
//!
//! // Vector sum: ifold n 0 (λ λ xs[•1] + •0)
//! let n = 16;
//! let vsum: Expr = dsl::ifold(
//!     n,
//!     dsl::num(0.0),
//!     dsl::lam(dsl::lam(dsl::add(
//!         dsl::get(dsl::sym("xs"), dsl::var(1)),
//!         dsl::var(0),
//!     ))),
//! );
//! assert_eq!(
//!     vsum.to_string(),
//!     "(ifold #16 0 (lam (lam (+ (get xs %1) %0))))"
//! );
//! let parsed: Expr = vsum.to_string().parse().unwrap();
//! assert_eq!(parsed, vsum);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod analysis;
pub mod debruijn;
pub mod dsl;
pub mod fingerprint;
mod lang;

pub use analysis::{ArrayAnalysis, ClassData};
pub use debruijn::VarSet;
pub use fingerprint::{ContentAddressed, ContentHash, StableHasher};
pub use lang::{ArrayLang, LibFn, Num};

/// A term of the array IR.
pub type Expr = liar_egraph::RecExpr<ArrayLang>;

/// An e-graph over the array IR with the standard analysis.
pub type ArrayEGraph = liar_egraph::EGraph<ArrayLang, ArrayAnalysis>;

/// A pattern over the array IR.
pub type ArrayPattern = liar_egraph::Pattern<ArrayLang>;

/// A rewrite rule over the array IR.
pub type ArrayRewrite = liar_egraph::Rewrite<ArrayLang, ArrayAnalysis>;

/// A replayable proof over the array IR (see [`liar_egraph::explain`]).
pub type ArrayExplanation = liar_egraph::Explanation<ArrayLang>;
