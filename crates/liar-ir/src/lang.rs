//! The [`ArrayLang`] node type: LIAR's IR as an e-graph language.

use liar_egraph::{Id, Language};

/// A non-NaN `f64` with total equality/ordering (for hash-consing).
///
/// `-0.0` is normalized to `0.0` so numerically equal constants share an
/// e-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Num(u64);

impl Num {
    /// Wrap a float.
    ///
    /// # Panics
    ///
    /// Panics on NaN — the IR has no NaN literals.
    pub fn new(value: f64) -> Self {
        assert!(!value.is_nan(), "NaN constants are not representable");
        let value = if value == 0.0 { 0.0 } else { value };
        Num(value.to_bits())
    }

    /// The wrapped float.
    pub fn get(self) -> f64 {
        f64::from_bits(self.0)
    }
}

impl From<f64> for Num {
    fn from(v: f64) -> Self {
        Num::new(v)
    }
}

impl std::fmt::Display for Num {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// Named library functions recognizable by LIAR (paper §V, listings 4–5).
///
/// Calls carry their array extents as leading [`ArrayLang::Dim`] children so
/// the cost models (listings 7–8) can read `N`, `M`, `K` directly.
///
/// Semantics (`·` is matrix/vector product, rows are the first index):
///
/// | function | arguments (after dims) | result |
/// |---|---|---|
/// | `dot(n, A, B)` | vectors of length n | `Σ A[i]·B[i]` |
/// | `axpy(n, α, A, B)` | scalar, vectors | `αA + B` |
/// | `gemv(n, m, α, A, B, β, C)` | A: n×m | `αAB + βC` |
/// | `gemvT(n, m, α, A, B, β, C)` | A: m×n | `αAᵀB + βC` |
/// | `gemmXY(n, m, k, α, A, B, β, C)` | see [`LibFn::Gemm`] | `α·opX(A)·opY(B)ᵀ' + βC` |
/// | `memset(n, c)` | c must be 0 | zero vector |
/// | `transpose(n, m, A)` | A: n×m | Aᵀ (m×n) |
/// | `add(n, A, B)` | tensors of n elements | elementwise A+B |
/// | `mul(n, α, A)` | scalar, tensor | elementwise αA |
/// | `mv(n, m, A, B)` | A: n×m, B: m | A·B |
/// | `mm(n, m, k, A, B)` | A: n×k, B: m×k | A·Bᵀ (n×m) |
/// | `sum(n, A)` | vector | `Σ A[i]` |
/// | `full(n, c)` | scalar | n copies of c |
///
/// Following the paper's idiom definitions (I-GEMM defines `gemmF,T` in
/// terms of `gemv` over rows of `B`), `gemmFT(α,A,B,β,C) = αABᵀ + βC` and
/// the other transpose flags follow by composing `transpose`; likewise the
/// PyTorch `mm(A, B) = A·Bᵀ` (its I-MATMAT builds rows with `mv(B, A[i])`),
/// which is why solutions like doitgen's `mm(A[i], transpose(B))` carry an
/// explicit transpose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LibFn {
    /// BLAS/PyTorch `dot(n, A, B)`.
    Dot,
    /// BLAS `axpy(n, α, A, B)`.
    Axpy,
    /// BLAS `gemv(n, m, α, A, B, β, C)`; `trans` selects `Aᵀ`.
    Gemv {
        /// Whether `A` is transposed before the product.
        trans: bool,
    },
    /// BLAS `gemm(n, m, k, α, A, B, β, C)` computing
    /// `α·opA(A)·opB(B)ᵀ + βC` where a `true` flag applies a transpose to
    /// the *stored* matrix before use: `gemmFT` is the "plain" orientation
    /// produced by I-GEMM (`A` n×k, `B` m×k, result n×m).
    Gemm {
        /// Transpose flag for `A`.
        trans_a: bool,
        /// Transpose flag for `B`.
        trans_b: bool,
    },
    /// C `memset(n, 0)`: an all-zeros vector.
    Memset,
    /// `transpose(n, m, A)` (shared between BLAS and PyTorch targets).
    Transpose,
    /// PyTorch elementwise `add(n, A, B)`; `n` is the element count
    /// (product of dims for lifted tensors).
    TAdd,
    /// PyTorch elementwise scalar multiply `mul(n, α, A)`.
    TMul,
    /// PyTorch `mv(n, m, A, B)`.
    TMv,
    /// PyTorch `mm(n, m, k, A, B) = A·Bᵀ`.
    TMm,
    /// PyTorch `sum(n, A)`.
    TSum,
    /// PyTorch `full(n, c)`.
    TFull,
}

impl LibFn {
    /// All library functions (for table-driven tests).
    pub const ALL: [LibFn; 16] = [
        LibFn::Dot,
        LibFn::Axpy,
        LibFn::Gemv { trans: false },
        LibFn::Gemv { trans: true },
        LibFn::Gemm { trans_a: false, trans_b: false },
        LibFn::Gemm { trans_a: false, trans_b: true },
        LibFn::Gemm { trans_a: true, trans_b: false },
        LibFn::Gemm { trans_a: true, trans_b: true },
        LibFn::Memset,
        LibFn::Transpose,
        LibFn::TAdd,
        LibFn::TMul,
        LibFn::TMv,
        LibFn::TMm,
        LibFn::TSum,
        LibFn::TFull,
    ];

    /// The function's name in the textual syntax (matches the paper's
    /// listings; `gemmFT` spells the two transpose flags).
    pub fn name(self) -> &'static str {
        match self {
            LibFn::Dot => "dot",
            LibFn::Axpy => "axpy",
            LibFn::Gemv { trans: false } => "gemv",
            LibFn::Gemv { trans: true } => "gemvT",
            LibFn::Gemm { trans_a: false, trans_b: false } => "gemmFF",
            LibFn::Gemm { trans_a: false, trans_b: true } => "gemmFT",
            LibFn::Gemm { trans_a: true, trans_b: false } => "gemmTF",
            LibFn::Gemm { trans_a: true, trans_b: true } => "gemmTT",
            LibFn::Memset => "memset",
            LibFn::Transpose => "transpose",
            LibFn::TAdd => "add",
            LibFn::TMul => "mul",
            LibFn::TMv => "mv",
            LibFn::TMm => "mm",
            LibFn::TSum => "sum",
            LibFn::TFull => "full",
        }
    }

    /// The display name used in solution summaries (collapses transpose
    /// variants, as the paper's tables do: `2 × gemv` counts both
    /// orientations).
    pub fn family_name(self) -> &'static str {
        match self {
            LibFn::Gemv { .. } => "gemv",
            LibFn::Gemm { .. } => "gemm",
            other => other.name(),
        }
    }

    /// Parse a function name.
    pub fn from_name(name: &str) -> Option<LibFn> {
        LibFn::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Total number of children of a call to this function (dims + value
    /// arguments).
    pub fn arity(self) -> usize {
        self.n_dims() + self.n_args()
    }

    /// Number of leading `Dim` children.
    pub fn n_dims(self) -> usize {
        match self {
            LibFn::Dot | LibFn::Axpy | LibFn::Memset => 1,
            LibFn::Gemv { .. } | LibFn::Transpose => 2,
            LibFn::Gemm { .. } => 3,
            LibFn::TAdd | LibFn::TMul | LibFn::TSum | LibFn::TFull => 1,
            LibFn::TMv => 2,
            LibFn::TMm => 3,
        }
    }

    /// Number of value arguments (after the dims).
    pub fn n_args(self) -> usize {
        match self {
            LibFn::Dot => 2,
            LibFn::Axpy => 3,
            LibFn::Gemv { .. } | LibFn::Gemm { .. } => 5,
            LibFn::Memset => 1,
            LibFn::Transpose => 1,
            LibFn::TAdd => 2,
            LibFn::TMul => 2,
            LibFn::TMv => 2,
            LibFn::TMm => 2,
            LibFn::TSum => 1,
            LibFn::TFull => 1,
        }
    }

    /// True for functions available when targeting BLAS (memset included,
    /// as in listing 4).
    pub fn in_blas(self) -> bool {
        matches!(
            self,
            LibFn::Dot
                | LibFn::Axpy
                | LibFn::Gemv { .. }
                | LibFn::Gemm { .. }
                | LibFn::Memset
                | LibFn::Transpose
        )
    }

    /// True for functions available when targeting PyTorch.
    pub fn in_torch(self) -> bool {
        matches!(
            self,
            LibFn::Dot
                | LibFn::Transpose
                | LibFn::TAdd
                | LibFn::TMul
                | LibFn::TMv
                | LibFn::TMm
                | LibFn::TSum
                | LibFn::TFull
        )
    }
}

impl std::fmt::Display for LibFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One node of the minimalist array IR (paper fig. 3).
///
/// See the crate docs for the textual syntax: `(lam e)`, `(app f x)`, `%i`
/// for De Bruijn parameter `•i`, `#n` for a compile-time extent,
/// `(build #n f)`, `(get a i)`, `(ifold #n init f)`, `(tuple a b)`,
/// `(fst t)`, `(snd t)`, infix-named scalar ops `(+ a b)` …, float literals,
/// bare identifiers for named inputs, and `(dot #n a b)`-style library
/// calls.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArrayLang {
    /// A compile-time array extent, `#n`.
    Dim(usize),
    /// A floating-point constant (nullary named function in the paper).
    Const(Num),
    /// A named program input (array or scalar).
    Sym(String),
    /// De Bruijn parameter use `•i`, written `%i`.
    Var(u32),
    /// Lambda abstraction.
    Lam(Id),
    /// Lambda application `f x`.
    App([Id; 2]),
    /// `build #n f`: the array `[f 0, f 1, …, f (n-1)]`.
    Build([Id; 2]),
    /// Array indexing `a[i]`.
    Get([Id; 2]),
    /// `ifold #n init f`: iteration with accumulator,
    /// `f (n-1) (… (f 1 (f 0 init)))`.
    IFold([Id; 3]),
    /// Binary tuple construction.
    Tuple([Id; 2]),
    /// First tuple component.
    Fst(Id),
    /// Second tuple component.
    Snd(Id),
    /// Scalar addition.
    Add([Id; 2]),
    /// Scalar subtraction.
    Sub([Id; 2]),
    /// Scalar multiplication.
    Mul([Id; 2]),
    /// Scalar division.
    Div([Id; 2]),
    /// Scalar comparison `a > b` (1.0 / 0.0).
    Gt([Id; 2]),
    /// A library call; children are `n_dims` extents then the value
    /// arguments.
    Call(LibFn, Vec<Id>),
}

impl ArrayLang {
    /// Shorthand for a constant node.
    pub fn num(v: f64) -> Self {
        ArrayLang::Const(Num::new(v))
    }

    /// The extent if this is a `Dim` leaf.
    pub fn as_dim(&self) -> Option<usize> {
        match self {
            ArrayLang::Dim(n) => Some(*n),
            _ => None,
        }
    }

    /// The constant value if this is a `Const` leaf.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            ArrayLang::Const(n) => Some(n.get()),
            _ => None,
        }
    }

    /// The library function if this is a call.
    pub fn as_call(&self) -> Option<LibFn> {
        match self {
            ArrayLang::Call(f, _) => Some(*f),
            _ => None,
        }
    }

    /// Whether `name` is usable as a [`ArrayLang::Sym`] input name such
    /// that the term **round-trips** through the textual syntax
    /// (`Display` then `FromStr` reproduces the same tree, the wire
    /// contract of the serve protocol).
    ///
    /// Valid names are non-empty, drawn from `[A-Za-z0-9_.]`, and not
    /// claimed by anything else in the grammar: not parseable as a float
    /// (which excludes `1e5`, `inf`, `nan`, …), not a library-function
    /// name, and not a core-form keyword. [`dsl::sym`](crate::dsl::sym)
    /// debug-asserts this; the parser can only ever produce valid names
    /// (everything else errors first).
    pub fn is_valid_sym(name: &str) -> bool {
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            && name.parse::<f64>().is_err()
            && LibFn::from_name(name).is_none()
            && !matches!(
                name,
                "lam" | "app" | "build" | "get" | "ifold" | "tuple" | "fst" | "snd"
            )
    }
}

impl Language for ArrayLang {
    fn children(&self) -> &[Id] {
        match self {
            ArrayLang::Dim(_) | ArrayLang::Const(_) | ArrayLang::Sym(_) | ArrayLang::Var(_) => &[],
            ArrayLang::Lam(id) | ArrayLang::Fst(id) | ArrayLang::Snd(id) => std::slice::from_ref(id),
            ArrayLang::App(ids)
            | ArrayLang::Build(ids)
            | ArrayLang::Get(ids)
            | ArrayLang::Tuple(ids)
            | ArrayLang::Add(ids)
            | ArrayLang::Sub(ids)
            | ArrayLang::Mul(ids)
            | ArrayLang::Div(ids)
            | ArrayLang::Gt(ids) => ids,
            ArrayLang::IFold(ids) => ids,
            ArrayLang::Call(_, ids) => ids,
        }
    }

    fn children_mut(&mut self) -> &mut [Id] {
        match self {
            ArrayLang::Dim(_) | ArrayLang::Const(_) | ArrayLang::Sym(_) | ArrayLang::Var(_) => {
                &mut []
            }
            ArrayLang::Lam(id) | ArrayLang::Fst(id) | ArrayLang::Snd(id) => {
                std::slice::from_mut(id)
            }
            ArrayLang::App(ids)
            | ArrayLang::Build(ids)
            | ArrayLang::Get(ids)
            | ArrayLang::Tuple(ids)
            | ArrayLang::Add(ids)
            | ArrayLang::Sub(ids)
            | ArrayLang::Mul(ids)
            | ArrayLang::Div(ids)
            | ArrayLang::Gt(ids) => ids,
            ArrayLang::IFold(ids) => ids,
            ArrayLang::Call(_, ids) => ids,
        }
    }

    fn matches(&self, other: &Self) -> bool {
        match (self, other) {
            (ArrayLang::Dim(a), ArrayLang::Dim(b)) => a == b,
            (ArrayLang::Const(a), ArrayLang::Const(b)) => a == b,
            (ArrayLang::Sym(a), ArrayLang::Sym(b)) => a == b,
            (ArrayLang::Var(a), ArrayLang::Var(b)) => a == b,
            (ArrayLang::Lam(_), ArrayLang::Lam(_)) => true,
            (ArrayLang::App(_), ArrayLang::App(_)) => true,
            (ArrayLang::Build(_), ArrayLang::Build(_)) => true,
            (ArrayLang::Get(_), ArrayLang::Get(_)) => true,
            (ArrayLang::IFold(_), ArrayLang::IFold(_)) => true,
            (ArrayLang::Tuple(_), ArrayLang::Tuple(_)) => true,
            (ArrayLang::Fst(_), ArrayLang::Fst(_)) => true,
            (ArrayLang::Snd(_), ArrayLang::Snd(_)) => true,
            (ArrayLang::Add(_), ArrayLang::Add(_)) => true,
            (ArrayLang::Sub(_), ArrayLang::Sub(_)) => true,
            (ArrayLang::Mul(_), ArrayLang::Mul(_)) => true,
            (ArrayLang::Div(_), ArrayLang::Div(_)) => true,
            (ArrayLang::Gt(_), ArrayLang::Gt(_)) => true,
            (ArrayLang::Call(f, a), ArrayLang::Call(g, b)) => f == g && a.len() == b.len(),
            _ => false,
        }
    }

    fn op_key(&self) -> u64 {
        // Allocation-free override of the default (which renders
        // `display_op` into a `String`): hash the variant discriminant
        // plus the payload that `matches` compares. Children are ignored,
        // so `a.matches(b)` implies equal keys, as the contract requires.
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::mem::discriminant(self).hash(&mut h);
        match self {
            ArrayLang::Dim(n) => n.hash(&mut h),
            ArrayLang::Const(c) => c.hash(&mut h),
            ArrayLang::Sym(s) => s.hash(&mut h),
            ArrayLang::Var(i) => i.hash(&mut h),
            ArrayLang::Call(f, args) => {
                f.hash(&mut h);
                args.len().hash(&mut h);
            }
            // The remaining variants are discriminated by tag alone
            // (`matches` returns true for any pair of them).
            _ => {}
        }
        h.finish()
    }

    fn display_op(&self) -> String {
        match self {
            ArrayLang::Dim(n) => format!("#{n}"),
            ArrayLang::Const(c) => c.to_string(),
            ArrayLang::Sym(s) => s.clone(),
            ArrayLang::Var(i) => format!("%{i}"),
            ArrayLang::Lam(_) => "lam".to_string(),
            ArrayLang::App(_) => "app".to_string(),
            ArrayLang::Build(_) => "build".to_string(),
            ArrayLang::Get(_) => "get".to_string(),
            ArrayLang::IFold(_) => "ifold".to_string(),
            ArrayLang::Tuple(_) => "tuple".to_string(),
            ArrayLang::Fst(_) => "fst".to_string(),
            ArrayLang::Snd(_) => "snd".to_string(),
            ArrayLang::Add(_) => "+".to_string(),
            ArrayLang::Sub(_) => "-".to_string(),
            ArrayLang::Mul(_) => "*".to_string(),
            ArrayLang::Div(_) => "/".to_string(),
            ArrayLang::Gt(_) => ">".to_string(),
            ArrayLang::Call(f, _) => f.name().to_string(),
        }
    }

    fn from_op(op: &str, children: Vec<Id>) -> Result<Self, String> {
        fn fixed<const N: usize>(op: &str, children: Vec<Id>) -> Result<[Id; N], String> {
            children
                .try_into()
                .map_err(|c: Vec<Id>| format!("{op} expects {N} arguments, got {}", c.len()))
        }
        match op {
            "lam" => Ok(ArrayLang::Lam(fixed::<1>(op, children)?[0])),
            "fst" => Ok(ArrayLang::Fst(fixed::<1>(op, children)?[0])),
            "snd" => Ok(ArrayLang::Snd(fixed::<1>(op, children)?[0])),
            "app" => Ok(ArrayLang::App(fixed(op, children)?)),
            "build" => Ok(ArrayLang::Build(fixed(op, children)?)),
            "get" => Ok(ArrayLang::Get(fixed(op, children)?)),
            "ifold" => Ok(ArrayLang::IFold(fixed(op, children)?)),
            "tuple" => Ok(ArrayLang::Tuple(fixed(op, children)?)),
            "+" => Ok(ArrayLang::Add(fixed(op, children)?)),
            "-" => Ok(ArrayLang::Sub(fixed(op, children)?)),
            "*" => Ok(ArrayLang::Mul(fixed(op, children)?)),
            "/" => Ok(ArrayLang::Div(fixed(op, children)?)),
            ">" => Ok(ArrayLang::Gt(fixed(op, children)?)),
            _ => {
                if let Some(n) = op.strip_prefix('#') {
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("bad extent literal {op}"))?;
                    return if children.is_empty() {
                        Ok(ArrayLang::Dim(n))
                    } else {
                        Err(format!("{op} takes no arguments"))
                    };
                }
                if let Some(i) = op.strip_prefix('%') {
                    let i: u32 = i
                        .parse()
                        .map_err(|_| format!("bad parameter index {op}"))?;
                    return if children.is_empty() {
                        Ok(ArrayLang::Var(i))
                    } else {
                        Err(format!("{op} takes no arguments"))
                    };
                }
                if let Some(f) = LibFn::from_name(op) {
                    return if children.len() == f.arity() {
                        Ok(ArrayLang::Call(f, children))
                    } else {
                        Err(format!(
                            "{op} expects {} arguments, got {}",
                            f.arity(),
                            children.len()
                        ))
                    };
                }
                if let Ok(v) = op.parse::<f64>() {
                    return if !children.is_empty() {
                        Err(format!("constant {op} takes no arguments"))
                    } else if v.is_nan() {
                        // `Num::new` panics on NaN; untrusted input (the
                        // serve protocol parses client programs) must get
                        // an error instead.
                        Err(format!("NaN constant {op} is not representable"))
                    } else {
                        Ok(ArrayLang::num(v))
                    };
                }
                if children.is_empty()
                    && op
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                {
                    return Ok(ArrayLang::Sym(op.to_string()));
                }
                Err(format!("unknown operator {op}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Expr;

    #[test]
    fn num_normalizes_negative_zero() {
        assert_eq!(Num::new(-0.0), Num::new(0.0));
        assert_eq!(Num::new(1.5).get(), 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn num_rejects_nan() {
        let _ = Num::new(f64::NAN);
    }

    #[test]
    fn libfn_names_roundtrip() {
        for f in LibFn::ALL {
            assert_eq!(LibFn::from_name(f.name()), Some(f), "{f:?}");
            assert_eq!(f.arity(), f.n_dims() + f.n_args());
        }
        assert_eq!(LibFn::from_name("nope"), None);
    }

    #[test]
    fn parse_core_forms() {
        for s in [
            "(lam %0)",
            "(app (lam %0) 1)",
            "(build #8 (lam (get xs %0)))",
            "(ifold #8 0 (lam (lam (+ (get xs %1) %0))))",
            "(tuple 1 2)",
            "(fst (tuple 1 2))",
            "(* 2 (- 3 (/ 4 5)))",
            "(dot #8 xs ys)",
            "(gemv #4 #8 alpha A B beta C)",
            "(gemmFT #2 #3 #4 1 A B 0 C)",
            "(memset #8 0)",
            "(full #8 0.33333)",
        ] {
            let e: Expr = s.parse().unwrap_or_else(|err| panic!("{s}: {err}"));
            assert_eq!(e.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_arity() {
        assert!("(lam %0 %1)".parse::<Expr>().is_err());
        assert!("(dot #8 xs)".parse::<Expr>().is_err());
        assert!("(#8 x)".parse::<Expr>().is_err());
        assert!("(build #8)".parse::<Expr>().is_err());
    }

    #[test]
    fn negative_constants_parse() {
        let e: Expr = "(- 0 -1.5)".parse().unwrap();
        assert_eq!(e.to_string(), "(- 0 -1.5)");
    }

    #[test]
    fn blas_and_torch_partitions() {
        assert!(LibFn::Dot.in_blas() && LibFn::Dot.in_torch());
        assert!(LibFn::Transpose.in_blas() && LibFn::Transpose.in_torch());
        assert!(LibFn::Axpy.in_blas() && !LibFn::Axpy.in_torch());
        assert!(!LibFn::TMv.in_blas() && LibFn::TMv.in_torch());
    }
}
