//! De Bruijn machinery: free-variable sets, the shift operator (`↑`) and
//! capture-avoiding substitution (paper §IV.B.3).
//!
//! These operators manipulate *expressions* rather than e-classes; following
//! the paper (and Koehler et al.), the rewrite engine applies them to single
//! representatives extracted from e-classes.

use liar_egraph::{Id, Language};

use crate::{ArrayLang, Expr};

/// A compact set of free De Bruijn indices.
///
/// Indices `< 64` are a bitset; anything larger sets the saturation flag
/// `high` and is treated conservatively. Program nesting depth in practice
/// is single digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct VarSet {
    bits: u64,
    high: bool,
}

impl VarSet {
    /// The empty set (a closed expression).
    pub const EMPTY: VarSet = VarSet { bits: 0, high: false };

    /// The raw `(bitset, saturation flag)` parts — for snapshot
    /// serialization; round-trips exactly through [`VarSet::from_raw`].
    pub fn to_raw(self) -> (u64, bool) {
        (self.bits, self.high)
    }

    /// Rebuild a set from its raw parts (see [`VarSet::to_raw`]).
    pub fn from_raw(bits: u64, high: bool) -> Self {
        VarSet { bits, high }
    }

    /// The set containing exactly index `i`.
    pub fn singleton(i: u32) -> Self {
        if i < 64 {
            VarSet { bits: 1 << i, high: false }
        } else {
            VarSet { bits: 0, high: true }
        }
    }

    /// Set union.
    pub fn union(self, other: Self) -> Self {
        VarSet {
            bits: self.bits | other.bits,
            high: self.high || other.high,
        }
    }

    /// Set intersection.
    pub fn intersect(self, other: Self) -> Self {
        VarSet {
            bits: self.bits & other.bits,
            high: self.high && other.high,
        }
    }

    /// The free variables of `λ e` given the free variables of `e`:
    /// index 0 is bound, everything else moves down one.
    pub fn under_lambda(self) -> Self {
        // The `high` flag stays: an index ≥ 64 maps to ≥ 63.
        VarSet {
            bits: self.bits >> 1,
            high: self.high,
        }
    }

    /// True when no index `< k` is in the set (the precondition for
    /// downshifting by `k`).
    ///
    /// # Panics
    ///
    /// Panics when `k > 63`.
    pub fn none_below(self, k: u32) -> bool {
        assert!(k <= 63, "shift amounts above 63 are unsupported");
        self.bits & ((1u64 << k) - 1) == 0
    }

    /// True when any of the mask's bits are present (mask bit `i` = index
    /// `i`).
    pub fn intersects_mask(self, mask: u64) -> bool {
        self.bits & mask != 0
    }

    /// True for the empty set with no saturated indices.
    pub fn is_empty(self) -> bool {
        self.bits == 0 && !self.high
    }

    /// True if the saturation flag is set (some index ≥ 64).
    pub fn saturated(self) -> bool {
        self.high
    }
}

/// The free variables contributed by one node given its children's sets.
pub fn node_free_vars(node: &ArrayLang, child: &mut dyn FnMut(Id) -> VarSet) -> VarSet {
    match node {
        ArrayLang::Var(i) => VarSet::singleton(*i),
        ArrayLang::Lam(body) => child(*body).under_lambda(),
        _ => node.fold(VarSet::EMPTY, |acc, c| acc.union(child(c))),
    }
}

/// The free De Bruijn indices of an expression.
pub fn free_vars(expr: &Expr) -> VarSet {
    let mut sets: Vec<VarSet> = Vec::with_capacity(expr.len());
    for node in expr.nodes() {
        let set = node_free_vars(node, &mut |c| sets[c.index()]);
        sets.push(set);
    }
    sets.last().copied().unwrap_or(VarSet::EMPTY)
}

fn rebuild<F>(expr: &Expr, id: Id, cutoff: u32, out: &mut Expr, on_var: &F) -> Option<Id>
where
    F: Fn(u32, u32, &mut Expr) -> Option<Id>,
{
    match expr.node(id) {
        ArrayLang::Var(i) => on_var(*i, cutoff, out),
        ArrayLang::Lam(body) => {
            let body = rebuild(expr, *body, cutoff + 1, out, on_var)?;
            Some(out.add(ArrayLang::Lam(body)))
        }
        node => {
            let mut children = Vec::with_capacity(node.children().len());
            for c in node.children() {
                children.push(rebuild(expr, *c, cutoff, out, on_var)?);
            }
            let mut i = 0;
            let node = node.clone().map_children(|_| {
                let id = children[i];
                i += 1;
                id
            });
            Some(out.add(node))
        }
    }
}

/// Shift every free index `≥ cutoff` up by `d` (the `↑` operator; `↑` in
/// the paper is `shift_from(e, 1, 0)`).
pub fn shift_from(expr: &Expr, d: u32, cutoff: u32) -> Expr {
    let mut out = Expr::default();
    rebuild(expr, expr.root(), cutoff, &mut out, &|i, cut, out| {
        let i = if i >= cut { i + d } else { i };
        Some(out.add(ArrayLang::Var(i)))
    })
    .expect("shifting up cannot fail");
    out
}

/// Shift every free index up by `d`.
pub fn shift_up(expr: &Expr, d: u32) -> Expr {
    if d == 0 {
        return expr.clone();
    }
    shift_from(expr, d, 0)
}

/// Shift every free index down by `d`, failing if any free index is `< d`.
pub fn try_shift_down(expr: &Expr, d: u32) -> Option<Expr> {
    if d == 0 {
        return Some(expr.clone());
    }
    let mut out = Expr::default();
    rebuild(expr, expr.root(), 0, &mut out, &|i, cut, out| {
        if i < cut {
            Some(out.add(ArrayLang::Var(i)))
        } else if i >= cut + d {
            Some(out.add(ArrayLang::Var(i - d)))
        } else {
            None // A free index < d: not downshiftable.
        }
    })?;
    Some(out)
}

/// Capture-avoiding substitution `subst(e, v)`: replace `•0` in `e` with
/// `v` and lower every other free index by one (the β-reduction operator of
/// listing 1).
pub fn subst(expr: &Expr, value: &Expr) -> Expr {
    let mut out = Expr::default();
    rebuild(expr, expr.root(), 0, &mut out, &|i, cut, out| {
        if i == cut {
            // The substituted variable: splice in `value`, shifted past the
            // binders we are under.
            let shifted = shift_up(value, cut);
            Some(out.append_subtree(&shifted, shifted.root()))
        } else if i > cut {
            Some(out.add(ArrayLang::Var(i - 1)))
        } else {
            Some(out.add(ArrayLang::Var(i)))
        }
    })
    .expect("substitution cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    #[test]
    fn free_vars_examples() {
        assert!(free_vars(&e("(lam %0)")).is_empty());
        assert_eq!(free_vars(&e("%2")), VarSet::singleton(2));
        assert_eq!(
            free_vars(&e("(lam (+ %0 %2))")),
            VarSet::singleton(1),
            "under a lambda, %2 is free index 1"
        );
        assert_eq!(
            free_vars(&e("(+ %0 (lam %2))")),
            VarSet::singleton(0).union(VarSet::singleton(1))
        );
        assert!(free_vars(&e("(build #4 (lam (get xs %0)))")).is_empty());
    }

    #[test]
    fn shift_examples() {
        // Paper: if e = •0 then e↑ = •1.
        assert_eq!(shift_up(&e("%0"), 1), e("%1"));
        // Bound variables are untouched.
        assert_eq!(shift_up(&e("(lam %0)"), 1), e("(lam %0)"));
        // Free variables under a lambda shift.
        assert_eq!(shift_up(&e("(lam %1)"), 1), e("(lam %2)"));
        assert_eq!(shift_up(&e("(lam %1)"), 2), e("(lam %3)"));
        // Shift by zero is identity.
        assert_eq!(shift_up(&e("(+ %0 %5)"), 0), e("(+ %0 %5)"));
    }

    #[test]
    fn shift_down_examples() {
        assert_eq!(try_shift_down(&e("%2"), 2), Some(e("%0")));
        assert_eq!(try_shift_down(&e("%1"), 2), None);
        assert_eq!(try_shift_down(&e("(lam %0)"), 1), Some(e("(lam %0)")));
        assert_eq!(try_shift_down(&e("(lam %3)"), 2), Some(e("(lam %1)")));
        assert_eq!(try_shift_down(&e("(lam %1)"), 1), None);
        assert_eq!(
            try_shift_down(&e("(get xs %3)"), 1),
            Some(e("(get xs %2)"))
        );
    }

    #[test]
    fn shift_roundtrip() {
        for s in ["%0", "(lam (+ %0 %1))", "(build #4 (lam (get %1 %0)))"] {
            let x = e(s);
            let up = shift_up(&x, 3);
            assert_eq!(try_shift_down(&up, 3), Some(x));
        }
    }

    #[test]
    fn subst_examples() {
        // Paper: subst(•0, y) = y and subst(•1, y) = •0.
        assert_eq!(subst(&e("%0"), &e("y")), e("y"));
        assert_eq!(subst(&e("%1"), &e("y")), e("%0"));
        // Under a lambda the target index moves up and the value shifts.
        assert_eq!(subst(&e("(lam %1)"), &e("y")), e("(lam y)"));
        assert_eq!(subst(&e("(lam %1)"), &e("%0")), e("(lam %1)"));
        // (λ (+ •0 •1)) applied to v: body with •0 := v.
        assert_eq!(subst(&e("(+ %0 %1)"), &e("v")), e("(+ v %0)"));
    }

    #[test]
    fn subst_avoids_capture() {
        // subst((λ •0 + •1), %3): the %3 shifts to %4 under the binder,
        // then lowers to account for the removed substitution target.
        let body = e("(lam (+ %0 %1))");
        let result = subst(&body, &e("%3"));
        assert_eq!(result, e("(lam (+ %0 %4))"));
    }

    #[test]
    fn beta_reduce_build_index_example() {
        // ((λ get xs •0) i) → get xs i  (the map-fusion workhorse).
        let body = e("(get xs %0)");
        let arg = e("i");
        assert_eq!(subst(&body, &arg), e("(get xs i)"));
    }

    #[test]
    fn varset_under_lambda() {
        let s = VarSet::singleton(0).union(VarSet::singleton(3));
        let l = s.under_lambda();
        assert_eq!(l, VarSet::singleton(2), "0 is bound, 3 becomes 2");
        assert!(l.none_below(2));
        assert!(!l.none_below(3));
    }
}
