//! The e-class analysis for the array IR.
//!
//! Every e-class carries:
//!
//! * a **free-variable set** (optimistic: the intersection over members, so
//!   a bit that is set is free in *every* member — sound for rejecting
//!   downshifts early);
//! * a smallest known **representative** term, used by the
//!   extraction-based substitution/shift appliers (paper §IV.B.3, second
//!   approach) and by shift-pattern instantiation;
//! * the **extent** when the class is a `#n` leaf (read by cost models);
//! * the **constant** when the class contains a float literal.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use liar_egraph::{
    Analysis, DidMerge, EGraph, Id, Language, SnapshotAnalysis, SnapshotError, SnapshotReader,
    SnapshotWriter,
};

use crate::debruijn::{self, VarSet};
use crate::{ArrayLang, Expr, Num};

/// Analysis fact attached to every e-class (see module docs).
#[derive(Debug, Clone)]
pub struct ClassData {
    /// Optimistic free-variable set (intersection over members).
    pub free: VarSet,
    /// Smallest known representative term (`Arc`: facts are shared
    /// read-only across the parallel search phase's threads).
    pub repr: Arc<Expr>,
    /// Exact free-variable set of `repr` (the fast path for downshifts).
    pub repr_free: VarSet,
    /// The extent when this class is a `Dim` leaf.
    pub dim: Option<usize>,
    /// The *leading array extent* of this class's value, when statically
    /// known (builds and vector/matrix-producing library calls). Used by
    /// the idiom rules' dimension guards: the untyped IR cannot rule out
    /// `0 = (build 5 (λ 0))[i]` in an 8-element context (the paper's SHIR
    /// carries index types instead), so appliers reject bindings whose
    /// extents disagree.
    pub extent: Option<usize>,
    /// The value when this class contains a float constant.
    pub constant: Option<Num>,
    /// True when some member is a De Bruijn variable (used by the intro
    /// rules to pick candidate `y` classes cheaply).
    pub has_var: bool,
}

/// The leading array extent of a node's value, given a resolver for `Dim`
/// children.
pub fn node_extent(
    node: &ArrayLang,
    dim_of: &mut dyn FnMut(liar_egraph::Id) -> Option<usize>,
) -> Option<usize> {
    use crate::LibFn;
    match node {
        ArrayLang::Build([n, _]) => dim_of(*n),
        ArrayLang::Call(f, args) => match f {
            // Vector- and matrix-producing calls: the leading extent is a
            // dim child.
            LibFn::Axpy
            | LibFn::Memset
            | LibFn::Gemv { .. }
            | LibFn::Gemm { .. }
            | LibFn::TMv
            | LibFn::TMm
            | LibFn::TFull => dim_of(args[0]),
            // transpose(n, m, A) produces an m×n result.
            LibFn::Transpose => dim_of(args[1]),
            // The polymorphic torch ops carry an element *count*, not a
            // leading extent (a lifted add over a 4×8 matrix is
            // `add(#32, …)`): no usable extent.
            LibFn::TAdd | LibFn::TMul => None,
            // Scalar results.
            LibFn::Dot | LibFn::TSum => None,
        },
        _ => None,
    }
}

/// The standard analysis for [`ArrayLang`] e-graphs.
///
/// Carries a downshift cache: pattern matching may ask for the same
/// `(class, k)` downshift many times within one (read-only) search phase;
/// the cache is invalidated whenever the e-graph changes. The cache sits
/// behind a `Mutex` (not a `RefCell`) so concurrent search workers can
/// share hits across threads.
#[derive(Debug, Default)]
pub struct ArrayAnalysis {
    downshift_cache: Mutex<HashMap<(Id, u32), Option<Expr>>>,
}

fn make_repr(egraph: &EGraph<ArrayLang, ArrayAnalysis>, enode: &ArrayLang) -> Expr {
    let mut repr = Expr::default();
    let node = enode.clone().map_children(|c| {
        let child = &egraph.data(c).repr;
        repr.append_subtree(child, child.root())
    });
    repr.add(node);
    repr
}

impl Analysis<ArrayLang> for ArrayAnalysis {
    type Data = ClassData;

    fn make(egraph: &EGraph<ArrayLang, Self>, enode: &ArrayLang) -> ClassData {
        let free = debruijn::node_free_vars(enode, &mut |c| egraph.data(c).free);
        let repr_free =
            debruijn::node_free_vars(enode, &mut |c| egraph.data(c).repr_free);
        let repr = Arc::new(make_repr(egraph, enode));
        let extent = node_extent(enode, &mut |c| egraph.data(c).dim);
        ClassData {
            free,
            repr,
            repr_free,
            extent,
            dim: enode.as_dim(),
            constant: enode.as_const().map(Num::new),
            has_var: matches!(enode, ArrayLang::Var(_)),
        }
    }

    fn merge(&mut self, a: &mut ClassData, b: ClassData) -> DidMerge {
        let mut did = DidMerge(false, false);

        let free = a.free.intersect(b.free);
        did.0 |= free != a.free;
        did.1 |= free != b.free;
        a.free = free;

        if b.repr.len() < a.repr.len() {
            a.repr = b.repr;
            a.repr_free = b.repr_free;
            did.0 = true;
        } else if a.repr != b.repr {
            did.1 = true;
        }

        match (a.extent, b.extent) {
            (None, Some(e)) => {
                a.extent = Some(e);
                did.0 = true;
            }
            (Some(_), None) => did.1 = true,
            (Some(x), Some(y)) => {
                debug_assert_eq!(x, y, "merged classes with extents {x} != {y}")
            }
            (None, None) => {}
        }
        match (a.dim, b.dim) {
            (None, Some(d)) => {
                a.dim = Some(d);
                did.0 = true;
            }
            (Some(_), None) => did.1 = true,
            (Some(x), Some(y)) => debug_assert_eq!(x, y, "merged classes with extents {x} != {y}"),
            (None, None) => {}
        }
        match (a.constant, b.constant) {
            (None, Some(c)) => {
                a.constant = Some(c);
                did.0 = true;
            }
            (Some(_), None) => did.1 = true,
            _ => {}
        }
        if b.has_var && !a.has_var {
            a.has_var = true;
            did.0 = true;
        } else if a.has_var && !b.has_var {
            did.1 = true;
        }
        did
    }

    fn representative(egraph: &EGraph<ArrayLang, Self>, id: Id) -> Option<Expr> {
        Some((*egraph.data(id).repr).clone())
    }

    fn modify(egraph: &mut EGraph<ArrayLang, Self>, _id: Id) {
        // The e-graph changed: cached downshifts may be stale (a class
        // may now have a *better* member, and ids may have moved).
        egraph.analysis.downshift_cache.lock().unwrap().clear();
    }

    fn downshift(egraph: &EGraph<ArrayLang, Self>, id: Id, k: u32) -> Option<Expr> {
        if k == 0 {
            return Self::representative(egraph, id);
        }
        let id = egraph.find(id);
        let data = egraph.data(id);
        // Fast path: the stored representative already avoids the low
        // indices (the overwhelmingly common case).
        if data.repr_free.none_below(k) {
            let down = debruijn::try_shift_down(&data.repr, k);
            debug_assert!(down.is_some(), "repr_free out of sync with repr");
            return down;
        }
        if let Some(cached) = egraph.analysis.downshift_cache.lock().unwrap().get(&(id, k)) {
            return cached.clone();
        }
        let mut finder = ShiftableFinder::new(egraph);
        let mask = (1u64 << k) - 1;
        let down = finder.find(id, mask).map(|found| {
            let down = debruijn::try_shift_down(&found, k);
            debug_assert!(down.is_some(), "finder returned non-shiftable term");
            down.expect("checked")
        });
        egraph
            .analysis
            .downshift_cache
            .lock()
            .unwrap()
            .insert((id, k), down.clone());
        down
    }

    fn shift_up(expr: &Expr, k: u32) -> Option<Expr> {
        Some(debruijn::shift_up(expr, k))
    }
}

impl SnapshotAnalysis<ArrayLang> for ArrayAnalysis {
    // Facts are serialized, not recomputed: `ClassData::repr` tie-breaks
    // on merge arrival order, so recomputation could change which (equal)
    // representative extraction-based appliers see.
    fn write_data(data: &ClassData, w: &mut SnapshotWriter) {
        let (bits, high) = data.free.to_raw();
        w.write_u64(bits);
        w.write_bool(high);
        let (rbits, rhigh) = data.repr_free.to_raw();
        w.write_u64(rbits);
        w.write_bool(rhigh);
        w.write_str(&data.repr.to_string());
        w.write_opt_u64(data.dim.map(|d| d as u64));
        w.write_opt_u64(data.extent.map(|e| e as u64));
        w.write_opt_u64(data.constant.map(|c| c.get().to_bits()));
        w.write_bool(data.has_var);
    }

    fn read_data(r: &mut SnapshotReader<'_>) -> Result<ClassData, SnapshotError> {
        let free = VarSet::from_raw(r.read_u64()?, r.read_bool()?);
        let repr_free = VarSet::from_raw(r.read_u64()?, r.read_bool()?);
        let repr_text = r.read_str()?;
        let repr: Expr = repr_text
            .parse()
            .map_err(|e| r.corrupt(format!("representative does not parse: {e}")))?;
        let dim = r.read_opt_u64()?.map(|d| d as usize);
        let extent = r.read_opt_u64()?.map(|e| e as usize);
        let constant = match r.read_opt_u64()? {
            Some(bits) => {
                let value = f64::from_bits(bits);
                if value.is_nan() {
                    return Err(r.corrupt("NaN constant in analysis data"));
                }
                Some(Num::new(value))
            }
            None => None,
        };
        let has_var = r.read_bool()?;
        Ok(ClassData {
            free,
            repr: Arc::new(repr),
            repr_free,
            dim,
            extent,
            constant,
            has_var,
        })
    }
}

/// Searches an e-class for a member term avoiding a set of De Bruijn
/// indices (given as a bitmask), preferring small terms.
///
/// This is the "downshift extractor" behind matching `A↑ᵏ` patterns: a
/// class matches `?a` shifted up by `k` exactly when it contains a term
/// with no free index `< k`.
struct ShiftableFinder<'a> {
    egraph: &'a EGraph<ArrayLang, ArrayAnalysis>,
    memo: HashMap<(Id, u64), Option<Arc<Expr>>>,
    visiting: Vec<(Id, u64)>,
}

impl<'a> ShiftableFinder<'a> {
    fn new(egraph: &'a EGraph<ArrayLang, ArrayAnalysis>) -> Self {
        ShiftableFinder {
            egraph,
            memo: HashMap::new(),
            visiting: Vec::new(),
        }
    }

    fn find(&mut self, class: Id, mask: u64) -> Option<Expr> {
        self.find_rc(class, mask).map(|e| (*e).clone())
    }

    fn find_rc(&mut self, class: Id, mask: u64) -> Option<Arc<Expr>> {
        let class = self.egraph.find(class);
        if mask == 0 {
            return Some(Arc::clone(&self.egraph.data(class).repr));
        }
        // Sound early reject: a bit in the optimistic (intersection) set is
        // free in every member.
        if self.egraph.data(class).free.intersects_mask(mask) {
            return None;
        }
        let key = (class, mask);
        if let Some(cached) = self.memo.get(&key) {
            return cached.clone();
        }
        if self.visiting.contains(&key) {
            return None; // Break cycles; another member must provide it.
        }
        self.visiting.push(key);
        let mut best: Option<Arc<Expr>> = None;
        for node in &self.egraph[class].nodes {
            let candidate = self.node_term(node, mask);
            if let Some(c) = candidate {
                if best.as_ref().is_none_or(|b| c.len() < b.len()) {
                    best = Some(c);
                }
            }
        }
        self.visiting.pop();
        self.memo.insert(key, best.clone());
        best
    }

    fn node_term(&mut self, node: &ArrayLang, mask: u64) -> Option<Arc<Expr>> {
        match node {
            ArrayLang::Var(i) => {
                if *i < 64 && mask & (1 << i) != 0 {
                    return None;
                }
                let mut e = Expr::default();
                e.add(ArrayLang::Var(*i));
                Some(Arc::new(e))
            }
            ArrayLang::Lam(body) => {
                // Under a binder, forbidden index i becomes i+1; the new
                // index 0 is always allowed.
                let inner = self.find_rc(*body, mask << 1)?;
                let mut e = Expr::default();
                let root = e.append_subtree(&inner, inner.root());
                e.add(ArrayLang::Lam(root));
                Some(Arc::new(e))
            }
            _ => {
                let mut children = Vec::with_capacity(node.children().len());
                for c in node.children() {
                    children.push(self.find_rc(*c, mask)?);
                }
                let mut e = Expr::default();
                let mut i = 0;
                let node = node.clone().map_children(|_| {
                    let sub = &children[i];
                    i += 1;
                    e.append_subtree(sub, sub.root())
                });
                e.add(node);
                Some(Arc::new(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayEGraph;

    fn e(s: &str) -> Expr {
        s.parse().unwrap()
    }

    #[test]
    fn repr_tracks_smallest_member() {
        let mut eg = ArrayEGraph::default();
        let big = eg.add_expr(&e("(+ (+ x 0) 0)"));
        let small = eg.add_expr(&e("x"));
        eg.union(big, small);
        eg.rebuild();
        assert_eq!(*eg.data(big).repr, e("x"));
    }

    #[test]
    fn dim_and_constant_facts() {
        let mut eg = ArrayEGraph::default();
        let d = eg.add_expr(&e("#16"));
        let c = eg.add_expr(&e("2.5"));
        assert_eq!(eg.data(d).dim, Some(16));
        assert_eq!(eg.data(c).constant, Some(Num::new(2.5)));
        assert_eq!(eg.data(c).dim, None);
    }

    #[test]
    fn free_vars_propagate() {
        let mut eg = ArrayEGraph::default();
        let id = eg.add_expr(&e("(lam (+ %0 %2))"));
        assert_eq!(eg.data(id).free, VarSet::singleton(1));
        let closed = eg.add_expr(&e("(build #4 (lam (get xs %0)))"));
        assert!(eg.data(closed).free.is_empty());
    }

    #[test]
    fn downshift_closed_class() {
        let mut eg = ArrayEGraph::default();
        let id = eg.add_expr(&e("(get xs %2)"));
        // All free indices are ≥ 2: downshift by 2 is possible.
        let down = ArrayAnalysis::downshift(&eg, id, 2).unwrap();
        assert_eq!(down, e("(get xs %0)"));
        // …but downshift by 3 is not.
        assert_eq!(ArrayAnalysis::downshift(&eg, id, 3), None);
    }

    #[test]
    fn downshift_uses_other_members() {
        let mut eg = ArrayEGraph::default();
        // Class contains both `(+ %0 junk)`-free `ys` and a member using %0.
        let a = eg.add_expr(&e("(get ys %0)"));
        let b = eg.add_expr(&e("zs"));
        eg.union(a, b);
        eg.rebuild();
        // %0 is free in one member but not the other: downshift by 1 finds
        // `zs`.
        let down = ArrayAnalysis::downshift(&eg, a, 1).unwrap();
        assert_eq!(down, e("zs"));
    }

    #[test]
    fn downshift_descends_through_lambdas() {
        let mut eg = ArrayEGraph::default();
        // λ body where body uses %0 (bound) and %3 (free index 2).
        let id = eg.add_expr(&e("(lam (get %3 %0))"));
        let down = ArrayAnalysis::downshift(&eg, id, 2).unwrap();
        assert_eq!(down, e("(lam (get %1 %0))"));
        assert_eq!(ArrayAnalysis::downshift(&eg, id, 3), None);
    }

    #[test]
    fn downshift_mixed_members_inside_node() {
        let mut eg = ArrayEGraph::default();
        // f(x) where x's class gains a %0-free member after a union.
        let x = eg.add_expr(&e("(get ys %0)"));
        let fx = eg.add(ArrayLang::Fst(x));
        assert_eq!(ArrayAnalysis::downshift(&eg, fx, 1), None);
        let zs = eg.add_expr(&e("zs"));
        eg.union(x, zs);
        eg.rebuild();
        let down = ArrayAnalysis::downshift(&eg, fx, 1).unwrap();
        assert_eq!(down, e("(fst zs)"));
    }

    #[test]
    fn snapshot_round_trips_analysis_data() {
        let mut eg = ArrayEGraph::default();
        let big = eg.add_expr(&e("(+ (+ x 0) 0)"));
        let small = eg.add_expr(&e("x"));
        let dims = eg.add_expr(&e("(build #4 (lam 2.5))"));
        eg.union(big, small);
        eg.rebuild();
        let bytes = eg.snapshot().unwrap();
        let restored = ArrayEGraph::restore(ArrayAnalysis::default(), &bytes).unwrap();
        let (a, b) = (eg.find(big), restored.find(big));
        assert_eq!(a, b);
        assert_eq!(*restored.data(b).repr, e("x"));
        assert_eq!(restored.data(b).free, eg.data(a).free);
        assert_eq!(restored.data(dims).extent, Some(4));
        // Byte-determinism: re-snapshotting the restored graph is exact.
        assert_eq!(restored.snapshot().unwrap(), bytes);
    }

    #[test]
    fn representative_hook() {
        let mut eg = ArrayEGraph::default();
        let id = eg.add_expr(&e("(+ a b)"));
        assert_eq!(ArrayAnalysis::representative(&eg, id), Some(e("(+ a b)")));
    }
}
