//! Ergonomic constructors for IR terms, plus the build/ifold
//! implementations of the mathematical operators used to express kernels
//! (paper §VI: `vadd`, `vscale`, `matvec`, `dot`, …).
//!
//! The composite operators take already-built subterms and internally apply
//! the shift operator to keep De Bruijn indices correct when placing an
//! argument under new binders, exactly like the expansions in §VI:
//!
//! ```text
//! vadd(A, B)   = build N (λ A↑[•0] + B↑[•0])
//! vscale(α, A) = build N (λ α↑ * A↑[•0])
//! matvec(A, B) = build N (λ dot(A↑[•0], B↑))
//! dot(A, B)    = ifold N 0 (λ λ A↑↑[•1] * B↑↑[•1] + •0)
//! ```

use liar_egraph::Id;

use crate::debruijn::shift_up;
use crate::{ArrayLang, Expr};

fn merge(nodes: Vec<(&Expr, ())>) -> (Expr, Vec<Id>) {
    let mut out = Expr::default();
    let roots = nodes
        .into_iter()
        .map(|(e, ())| out.append_subtree(e, e.root()))
        .collect();
    (out, roots)
}

fn nary(node: impl FnOnce(Vec<Id>) -> ArrayLang, args: &[&Expr]) -> Expr {
    let (mut out, roots) = merge(args.iter().map(|e| (*e, ())).collect());
    out.add(node(roots));
    out
}

/// De Bruijn parameter `•i`.
pub fn var(i: u32) -> Expr {
    let mut e = Expr::default();
    e.add(ArrayLang::Var(i));
    e
}

/// Float constant.
pub fn num(v: f64) -> Expr {
    let mut e = Expr::default();
    e.add(ArrayLang::num(v));
    e
}

/// Compile-time extent `#n`.
pub fn dim(n: usize) -> Expr {
    let mut e = Expr::default();
    e.add(ArrayLang::Dim(n));
    e
}

/// Named program input.
pub fn sym(name: impl Into<String>) -> Expr {
    let name = name.into();
    debug_assert!(
        ArrayLang::is_valid_sym(&name),
        "input name {name:?} would not round-trip through the textual syntax \
         (see ArrayLang::is_valid_sym)"
    );
    let mut e = Expr::default();
    e.add(ArrayLang::Sym(name));
    e
}

/// Lambda abstraction.
pub fn lam(body: Expr) -> Expr {
    nary(|c| ArrayLang::Lam(c[0]), &[&body])
}

/// Lambda application.
pub fn app(f: Expr, x: Expr) -> Expr {
    nary(|c| ArrayLang::App([c[0], c[1]]), &[&f, &x])
}

/// `build #n f`.
pub fn build(n: usize, f: Expr) -> Expr {
    nary(|c| ArrayLang::Build([c[0], c[1]]), &[&dim(n), &f])
}

/// Array indexing `a[i]`.
pub fn get(a: Expr, i: Expr) -> Expr {
    nary(|c| ArrayLang::Get([c[0], c[1]]), &[&a, &i])
}

/// `ifold #n init f`.
pub fn ifold(n: usize, init: Expr, f: Expr) -> Expr {
    nary(|c| ArrayLang::IFold([c[0], c[1], c[2]]), &[&dim(n), &init, &f])
}

/// Tuple construction.
pub fn tuple(a: Expr, b: Expr) -> Expr {
    nary(|c| ArrayLang::Tuple([c[0], c[1]]), &[&a, &b])
}

/// First tuple component.
pub fn fst(t: Expr) -> Expr {
    nary(|c| ArrayLang::Fst(c[0]), &[&t])
}

/// Second tuple component.
pub fn snd(t: Expr) -> Expr {
    nary(|c| ArrayLang::Snd(c[0]), &[&t])
}

/// Scalar addition.
pub fn add(a: Expr, b: Expr) -> Expr {
    nary(|c| ArrayLang::Add([c[0], c[1]]), &[&a, &b])
}

/// Scalar subtraction.
pub fn sub(a: Expr, b: Expr) -> Expr {
    nary(|c| ArrayLang::Sub([c[0], c[1]]), &[&a, &b])
}

/// Scalar multiplication.
pub fn mul(a: Expr, b: Expr) -> Expr {
    nary(|c| ArrayLang::Mul([c[0], c[1]]), &[&a, &b])
}

/// Scalar division.
pub fn div(a: Expr, b: Expr) -> Expr {
    nary(|c| ArrayLang::Div([c[0], c[1]]), &[&a, &b])
}

/// A library call with explicit children (dims first).
pub fn call(f: crate::LibFn, args: &[&Expr]) -> Expr {
    assert_eq!(args.len(), f.arity(), "{f}: wrong arity");
    nary(|c| ArrayLang::Call(f, c), args)
}

// --- Composite operators (build/ifold implementations, paper §VI) ------

/// Elementwise vector addition: `build n (λ a↑[•0] + b↑[•0])`.
pub fn vadd(n: usize, a: Expr, b: Expr) -> Expr {
    let (a1, b1) = (shift_up(&a, 1), shift_up(&b, 1));
    build(n, lam(add(get(a1, var(0)), get(b1, var(0)))))
}

/// Vector scaling: `build n (λ alpha↑ * a↑[•0])`.
pub fn vscale(n: usize, alpha: Expr, a: Expr) -> Expr {
    let (al1, a1) = (shift_up(&alpha, 1), shift_up(&a, 1));
    build(n, lam(mul(al1, get(a1, var(0)))))
}

/// Dot product as an ifold: `ifold n 0 (λ λ a↑↑[•1] * b↑↑[•1] + •0)`.
pub fn dot(n: usize, a: Expr, b: Expr) -> Expr {
    let (a2, b2) = (shift_up(&a, 2), shift_up(&b, 2));
    ifold(
        n,
        num(0.0),
        lam(lam(add(
            mul(get(a2, var(1)), get(b2, var(1))),
            var(0),
        ))),
    )
}

/// Vector sum as an ifold: `ifold n 0 (λ λ a↑↑[•1] + •0)`.
pub fn vsum(n: usize, a: Expr) -> Expr {
    let a2 = shift_up(&a, 2);
    ifold(n, num(0.0), lam(lam(add(get(a2, var(1)), var(0)))))
}

/// Matrix–vector product over rows: `build n (λ dot(a↑[•0], b↑))`,
/// where `a` is an n×m matrix.
pub fn matvec(n: usize, m: usize, a: Expr, b: Expr) -> Expr {
    let (a1, b1) = (shift_up(&a, 1), shift_up(&b, 1));
    build(n, lam(dot(m, get(a1, var(0)), b1)))
}

/// Explicit transpose as nested builds:
/// `build m (λ build n (λ a↑↑[•0][•1]))` for an n×m input `a`.
pub fn transposeb(n: usize, m: usize, a: Expr) -> Expr {
    let a2 = shift_up(&a, 2);
    build(m, lam(build(n, lam(get(get(a2, var(0)), var(1))))))
}

/// Matrix–matrix product `a · b` where `a` is n×k and `b` is k×m, written
/// the way a functional programmer composes it: rows of `a` dotted with
/// rows of the explicitly transposed `b`.
pub fn matmat(n: usize, m: usize, k: usize, a: Expr, b: Expr) -> Expr {
    let bt = transposeb(k, m, b); // b is k×m, bt is m×k.
    let (a2, bt2) = (shift_up(&a, 2), shift_up(&bt, 2));
    build(
        n,
        lam(build(
            m,
            lam(dot(k, get(a2, var(1)), get(bt2, var(0)))),
        )),
    )
}

/// Elementwise matrix addition (nested `vadd`).
pub fn madd(n: usize, m: usize, a: Expr, b: Expr) -> Expr {
    let (a1, b1) = (shift_up(&a, 1), shift_up(&b, 1));
    build(
        n,
        lam(vadd(m, get(a1, var(0)), get(b1, var(0)))),
    )
}

/// Elementwise matrix scaling (nested `vscale`).
pub fn mscale(n: usize, m: usize, alpha: Expr, a: Expr) -> Expr {
    let (al1, a1) = (shift_up(&alpha, 1), shift_up(&a, 1));
    build(n, lam(vscale(m, al1, get(a1, var(0)))))
}

/// A constant vector: `build n (λ c↑)`.
pub fn constvec(n: usize, c: Expr) -> Expr {
    build(n, lam(shift_up(&c, 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::debruijn::free_vars;

    fn p(s: &str) -> Expr {
        s.parse().unwrap()
    }

    #[test]
    fn composites_match_paper_expansions() {
        assert_eq!(
            vadd(4, sym("A"), sym("B")),
            p("(build #4 (lam (+ (get A %0) (get B %0))))")
        );
        assert_eq!(
            vscale(4, sym("alpha"), sym("A")),
            p("(build #4 (lam (* alpha (get A %0))))")
        );
        assert_eq!(
            dot(4, sym("A"), sym("B")),
            p("(ifold #4 0 (lam (lam (+ (* (get A %1) (get B %1)) %0))))")
        );
        assert_eq!(
            matvec(2, 4, sym("A"), sym("B")),
            p("(build #2 (lam (ifold #4 0 (lam (lam (+ (* (get (get A %2) %1) (get B %1)) %0))))))")
        );
    }

    #[test]
    fn composites_are_closed_for_symbol_inputs() {
        for e in [
            vadd(4, sym("A"), sym("B")),
            matvec(2, 4, sym("A"), sym("x")),
            matmat(2, 3, 4, sym("A"), sym("B")),
            transposeb(2, 3, sym("A")),
            vsum(8, sym("xs")),
            constvec(8, num(0.5)),
        ] {
            assert!(free_vars(&e).is_empty(), "{e} has free variables");
        }
    }

    #[test]
    fn composites_shift_open_arguments() {
        // Using a variable from an enclosing binder as an argument: the
        // combinator must shift it under the new lambda.
        let e = vscale(4, var(0), sym("A"));
        assert_eq!(e, p("(build #4 (lam (* %1 (get A %0))))"));
        assert_eq!(free_vars(&e), crate::VarSet::singleton(0));
    }

    #[test]
    fn transpose_of_transpose_shape() {
        // transposeb(n, m, a) of an n×m a is m×n; transposing again is n×m.
        let t = transposeb(2, 3, sym("A"));
        let tt = transposeb(3, 2, t.clone());
        assert!(free_vars(&tt).is_empty());
        assert_eq!(
            t,
            p("(build #3 (lam (build #2 (lam (get (get A %0) %1)))))")
        );
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn call_checks_arity() {
        let _ = call(crate::LibFn::Dot, &[&sym("a"), &sym("b")]);
    }
}
