//! `Display`/`FromStr` round-trip guarantees for the whole IR — the wire
//! format of the serve protocol depends on them.
//!
//! For every [`ArrayLang`] constructor (randomized over a seeded
//! generator, plus targeted regressions), a term built programmatically
//! must satisfy:
//!
//! * **display fixpoint** — `parse(display(e))` displays identically;
//! * **structural identity** — the re-parsed tree is node-for-node the
//!   same tree (checked independently of, and in addition to,
//!   [`ContentAddressed::content_hash`] agreement);
//! * parse never panics on adversarial atoms (`nan` is an error, not a
//!   `Num::new` panic).
//!
//! The generator is a seeded splitmix64 (the same construction the
//! kernel-input generator uses) so failures reproduce bit-for-bit.

use liar_egraph::Language;
use liar_ir::{ArrayLang, ArrayPattern, ContentAddressed, Expr, LibFn, Num};

// ---------------------------------------------------------------------------
// Deterministic generator.

/// splitmix64 (Steele et al., OOPSLA 2014).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Floats whose textual formatting is worth stressing: negatives, huge
/// and tiny magnitudes (Rust's `{}` never uses scientific notation, so
/// these print hundreds of digits), subnormals, repeating fractions,
/// infinities, and the normalized `-0.0`.
const FLOAT_POOL: [f64; 16] = [
    0.0,
    -0.0,
    1.0,
    -1.0,
    -1.5,
    0.1,
    1.0 / 3.0,
    -2.5e-7,
    1e300,
    -1e300,
    1e-300,
    5e-324, // smallest positive subnormal
    f64::MAX,
    f64::MIN_POSITIVE,
    f64::INFINITY,
    f64::NEG_INFINITY,
];

const SYM_POOL: [&str; 8] = ["xs", "A", "alpha", "x_1", "a.b", "v0", "Z9", "_tmp"];

fn gen_leaf(rng: &mut Rng) -> Expr {
    let mut e = Expr::default();
    match rng.below(4) {
        0 => e.add(ArrayLang::Dim(rng.below(100))),
        1 => {
            let v = if rng.below(4) == 0 {
                // A random finite bit pattern (NaN re-rolled to 1.0).
                let bits = rng.next();
                let v = f64::from_bits(bits);
                if v.is_nan() {
                    1.0
                } else {
                    v
                }
            } else {
                FLOAT_POOL[rng.below(FLOAT_POOL.len())]
            };
            e.add(ArrayLang::Const(Num::new(v)))
        }
        2 => e.add(ArrayLang::Sym(SYM_POOL[rng.below(SYM_POOL.len())].into())),
        _ => e.add(ArrayLang::Var(rng.below(5) as u32)),
    };
    e
}

/// Generate a term; `depth` bounds nesting. Every constructor can appear.
fn gen_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 {
        return gen_leaf(rng);
    }
    let child = |rng: &mut Rng| gen_expr(rng, depth - 1);
    let mut out = Expr::default();
    let put = |out: &mut Expr, e: Expr| out.append_subtree(&e, e.root());
    match rng.below(16) {
        0 => return gen_leaf(rng),
        1 => {
            let c = put(&mut out, child(rng));
            out.add(ArrayLang::Lam(c));
        }
        2 => {
            let c = put(&mut out, child(rng));
            out.add(ArrayLang::Fst(c));
        }
        3 => {
            let c = put(&mut out, child(rng));
            out.add(ArrayLang::Snd(c));
        }
        n @ 4..=11 => {
            let a = put(&mut out, child(rng));
            let b = put(&mut out, child(rng));
            let node = match n {
                4 => ArrayLang::App([a, b]),
                5 => ArrayLang::Build([a, b]),
                6 => ArrayLang::Get([a, b]),
                7 => ArrayLang::Tuple([a, b]),
                8 => ArrayLang::Add([a, b]),
                9 => ArrayLang::Sub([a, b]),
                10 => ArrayLang::Mul([a, b]),
                _ => if rng.below(2) == 0 {
                    ArrayLang::Div([a, b])
                } else {
                    ArrayLang::Gt([a, b])
                },
            };
            out.add(node);
        }
        12 => {
            let a = put(&mut out, child(rng));
            let b = put(&mut out, child(rng));
            let c = put(&mut out, child(rng));
            out.add(ArrayLang::IFold([a, b, c]));
        }
        _ => {
            let f = LibFn::ALL[rng.below(LibFn::ALL.len())];
            let mut ids = Vec::new();
            for _ in 0..f.n_dims() {
                let mut d = Expr::default();
                d.add(ArrayLang::Dim(rng.below(64)));
                ids.push(put(&mut out, d));
            }
            for _ in 0..f.n_args() {
                ids.push(put(&mut out, child(rng)));
            }
            out.add(ArrayLang::Call(f, ids));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Structural tree equality, independent of node-table layout.

fn tree_eq(a: &Expr, ia: liar_egraph::Id, b: &Expr, ib: liar_egraph::Id) -> bool {
    let (na, nb) = (a.node(ia), b.node(ib));
    na.matches(nb)
        && na
            .children()
            .iter()
            .zip(nb.children())
            .all(|(ca, cb)| tree_eq(a, *ca, b, *cb))
}

fn assert_roundtrip(e: &Expr) {
    let text = e.to_string();
    let parsed: Expr = text
        .parse()
        .unwrap_or_else(|err| panic!("{text}: {err}"));
    assert_eq!(parsed.to_string(), text, "display is not a fixpoint");
    assert!(
        tree_eq(e, e.root(), &parsed, parsed.root()),
        "re-parsed tree differs: {text}"
    );
    assert_eq!(
        e.content_hash(),
        parsed.content_hash(),
        "content hash changed across the wire: {text}"
    );
}

// ---------------------------------------------------------------------------
// The tests.

#[test]
fn randomized_roundtrip_all_constructors() {
    let mut rng = Rng(0x11a2_2024);
    // Make sure the sweep actually exercises every constructor.
    let mut seen_call = [false; LibFn::ALL.len()];
    for i in 0..500 {
        let e = gen_expr(&mut rng, 1 + i % 5);
        for node in e.nodes() {
            if let Some(f) = node.as_call() {
                seen_call[LibFn::ALL.iter().position(|g| *g == f).unwrap()] = true;
            }
        }
        assert_roundtrip(&e);
    }
    assert!(
        seen_call.iter().all(|s| *s),
        "generator missed some LibFns: {seen_call:?}"
    );
}

#[test]
fn every_libfn_roundtrips_at_exact_arity() {
    for f in LibFn::ALL {
        let mut e = Expr::default();
        let mut ids = Vec::new();
        for d in 0..f.n_dims() {
            ids.push(e.add(ArrayLang::Dim(8 + d)));
        }
        for a in 0..f.n_args() {
            ids.push(e.add(ArrayLang::Sym(format!("a{a}"))));
        }
        e.add(ArrayLang::Call(f, ids));
        assert_roundtrip(&e);
        // Wrong arity must fail to parse.
        let text = e.to_string();
        let truncated = text.rsplit_once(' ').unwrap().0.to_string() + ")";
        assert!(truncated.parse::<Expr>().is_err(), "{truncated}");
    }
}

#[test]
fn negative_and_extreme_constants_roundtrip() {
    for v in FLOAT_POOL {
        let mut e = Expr::default();
        e.add(ArrayLang::num(v));
        assert_roundtrip(&e);
    }
    for text in ["-1.5", "(- 0 -1.5)", "(mul #4 -2.5 xs)", "(+ -1e-300 1e300)"] {
        let e: Expr = text.parse().unwrap();
        assert_roundtrip(&e);
    }
}

#[test]
fn nan_is_a_parse_error_not_a_panic() {
    for text in ["nan", "NaN", "-nan", "(+ nan 1)", "(full #4 NaN)"] {
        assert!(text.parse::<Expr>().is_err(), "{text:?} must not parse");
    }
    // Infinities, by contrast, are representable and round-trip.
    let e: Expr = "inf".parse().unwrap();
    assert_eq!(e.to_string(), "inf");
    let e: Expr = "(- 0 -inf)".parse().unwrap();
    assert_roundtrip(&e);
}

#[test]
fn sym_validity_matches_the_grammar() {
    for good in SYM_POOL {
        assert!(ArrayLang::is_valid_sym(good), "{good:?}");
        let mut e = Expr::default();
        e.add(ArrayLang::Sym(good.to_string()));
        assert_roundtrip(&e);
    }
    for bad in [
        "",      // empty
        "1.5",   // parses as a constant
        "1e5",   // parses as a constant
        "inf",   // parses as a constant
        "nan",   // would be a NaN constant
        "dot",   // library function
        "gemmFT", // library function
        "lam",   // core keyword
        "ifold", // core keyword
        "a b",   // whitespace
        "a-b",   // '-' is the subtraction operator
        "#8",    // extent syntax
        "%0",    // parameter syntax
        "?x",    // pattern-variable syntax
    ] {
        assert!(!ArrayLang::is_valid_sym(bad), "{bad:?} should be invalid");
    }
}

#[test]
fn pattern_sh0_normalizes_and_roundtrips() {
    // `(sh0 ?x)` is the identity shift: it must normalize to a plain
    // variable at parse time, and the *normalized* form is the display
    // fixpoint.
    let p: ArrayPattern = "(get (sh0 ?a) ?i)".parse().unwrap();
    assert_eq!(p.to_string(), "(get ?a ?i)");
    let again: ArrayPattern = p.to_string().parse().unwrap();
    assert_eq!(again.to_string(), p.to_string());

    // Non-zero shifts survive verbatim.
    let p: ArrayPattern = "(build ?n (lam (get (sh1 ?xs) %0)))".parse().unwrap();
    assert_eq!(p.to_string(), "(build ?n (lam (get (sh1 ?xs) %0)))");
}
