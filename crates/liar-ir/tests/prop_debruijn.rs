//! Property tests for the De Bruijn machinery: the shift and substitution
//! operators that the extraction-based rule appliers rely on (paper
//! §IV.B.3). If these laws break, equality saturation silently derives
//! wrong equalities, so they get the heaviest testing in the workspace.

use proptest::prelude::*;

use liar_ir::debruijn::{free_vars, shift_up, subst, try_shift_down};
use liar_ir::{dsl, ArrayLang, Expr, VarSet};

/// A strategy for arbitrary well-formed expressions. `depth` bounds
/// recursion; variables index at most `max_var` binders above the current
/// position (so generated terms may be open).
fn arb_expr(depth: u32, max_var: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0..3u32).prop_map(|i| dsl::num(i as f64)),
        Just(dsl::sym("x")),
        Just(dsl::sym("ys")),
        (0..max_var.max(1)).prop_map(dsl::var),
    ];
    leaf.prop_recursive(depth, 64, 3, move |inner| {
        prop_oneof![
            inner.clone().prop_map(dsl::lam),
            (inner.clone(), inner.clone()).prop_map(|(f, x)| dsl::app(f, x)),
            (1..4usize, inner.clone()).prop_map(|(n, f)| dsl::build(n, dsl::lam(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, i)| dsl::get(a, i)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| dsl::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| dsl::mul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| dsl::tuple(a, b)),
            inner.clone().prop_map(dsl::fst),
            inner.prop_map(dsl::snd),
        ]
    })
    .boxed()
}

proptest! {
    /// Shifting up then down is the identity.
    #[test]
    fn shift_roundtrip(e in arb_expr(4, 3), d in 0u32..4) {
        let up = shift_up(&e, d);
        prop_assert_eq!(try_shift_down(&up, d), Some(e));
    }

    /// Shifts compose additively.
    #[test]
    fn shift_composes(e in arb_expr(4, 3), a in 0u32..3, b in 0u32..3) {
        prop_assert_eq!(shift_up(&shift_up(&e, a), b), shift_up(&e, a + b));
    }

    /// Shifting by zero is the identity.
    #[test]
    fn shift_zero_identity(e in arb_expr(4, 3)) {
        prop_assert_eq!(shift_up(&e, 0), e.clone());
        prop_assert_eq!(try_shift_down(&e, 0), Some(e));
    }

    /// The paper's definition: substituting into a shifted term never
    /// touches it — `subst(e↑, v) = e`.
    #[test]
    fn subst_into_shifted_is_identity(e in arb_expr(4, 3), v in arb_expr(3, 0)) {
        prop_assert_eq!(subst(&shift_up(&e, 1), &v), e);
    }

    /// β on a constant function: `(λ e↑) y = e` for all y — this is
    /// exactly the equality R-IntroLambda installs.
    #[test]
    fn intro_lambda_equality_is_beta_sound(e in arb_expr(3, 2), y in arb_expr(2, 2)) {
        // subst(body, y) where body = e↑ must give back e.
        let body = shift_up(&e, 1);
        prop_assert_eq!(subst(&body, &y), e);
    }

    /// Free variables after a shift are the shifted free variables.
    #[test]
    fn shift_moves_free_vars(e in arb_expr(4, 2), d in 1u32..3) {
        let before = free_vars(&e);
        let after = free_vars(&shift_up(&e, d));
        // Every index below d is gone after shifting up by d.
        prop_assert!(after.none_below(d));
        prop_assert_eq!(before.is_empty(), after.is_empty());
    }

    /// Substitution on a closed term is the identity. A closed term is
    /// manufactured by λ-wrapping a body whose only free index is 0.
    #[test]
    fn subst_closed_identity(body in arb_expr(3, 1), v in arb_expr(2, 1)) {
        let e = dsl::lam(body);
        prop_assume!(free_vars(&e).is_empty());
        prop_assert_eq!(subst(&shift_up(&e, 1), &v), e.clone());
        // A closed term also downshifts trivially after any shift.
        prop_assert_eq!(try_shift_down(&e, 0), Some(e));
    }

    /// Parser/printer roundtrip for arbitrary expressions.
    #[test]
    fn parse_display_roundtrip(e in arb_expr(4, 3)) {
        let text = e.to_string();
        let back: Expr = text.parse().unwrap();
        prop_assert_eq!(back, e);
    }

    /// `free_vars` agrees with a naive recursive definition.
    #[test]
    fn free_vars_matches_naive(e in arb_expr(4, 3)) {
        fn naive(expr: &Expr, id: liar_egraph::Id, depth: u32, out: &mut Vec<u32>) {
            match expr.node(id) {
                ArrayLang::Var(i) => {
                    if *i >= depth {
                        out.push(i - depth);
                    }
                }
                ArrayLang::Lam(b) => naive(expr, *b, depth + 1, out),
                node => {
                    for c in liar_egraph::Language::children(node) {
                        naive(expr, *c, depth, out);
                    }
                }
            }
        }
        let mut indices = Vec::new();
        naive(&e, e.root(), 0, &mut indices);
        let mut expect = VarSet::EMPTY;
        for i in indices {
            expect = expect.union(VarSet::singleton(i));
        }
        prop_assert_eq!(free_vars(&e), expect);
    }
}
