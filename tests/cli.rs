//! Smoke tests for the `liar` command-line tool.

use std::process::Command;

fn liar(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_liar"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn optimize_finds_the_latent_dot() {
    let out = liar(&[
        "optimize",
        "--target",
        "blas",
        "--steps",
        "6",
        "(ifold #16 0 (lam (lam (+ (get xs %1) %0))))",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 × dot"), "{stdout}");
    assert!(stdout.contains("(dot #16 xs"), "{stdout}");
}

#[test]
fn kernel_subcommand_runs_table_rows() {
    let out = liar(&["kernel", "--target", "pytorch", "vsum"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 × sum"), "{stdout}");
}

#[test]
fn kernels_lists_table_one() {
    let out = liar(&["kernels"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["2mm", "vsum", "stencil2d", "gemver"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn emit_c_produces_cblas() {
    let out = liar(&["emit-c", "gemv"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("cblas_dgemv"), "{stdout}");
}

#[test]
fn bad_input_fails_gracefully() {
    assert!(!liar(&["optimize", "(((("]).status.success());
    assert!(!liar(&["kernel", "not-a-kernel"]).status.success());
    assert!(!liar(&["frobnicate"]).status.success());
    assert!(!liar(&["optimize", "--target", "fortran", "(+ 1 2)"]).status.success());
}
