//! Smoke tests for the `liar` command-line tool.

use std::process::Command;

fn liar(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_liar"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn optimize_finds_the_latent_dot() {
    let out = liar(&[
        "optimize",
        "--target",
        "blas",
        "--steps",
        "6",
        "(ifold #16 0 (lam (lam (+ (get xs %1) %0))))",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 × dot"), "{stdout}");
    assert!(stdout.contains("(dot #16 xs"), "{stdout}");
}

#[test]
fn kernel_subcommand_runs_table_rows() {
    let out = liar(&["kernel", "--target", "pytorch", "vsum"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 × sum"), "{stdout}");
}

#[test]
fn kernels_lists_table_one() {
    let out = liar(&["kernels"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["2mm", "vsum", "stencil2d", "gemver"] {
        assert!(stdout.contains(name), "missing {name}");
    }
}

#[test]
fn emit_c_produces_cblas() {
    let out = liar(&["emit-c", "gemv"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("cblas_dgemv"), "{stdout}");
}

#[test]
fn bad_input_fails_gracefully() {
    assert!(!liar(&["optimize", "(((("]).status.success());
    assert!(!liar(&["kernel", "not-a-kernel"]).status.success());
    assert!(!liar(&["frobnicate"]).status.success());
    assert!(!liar(&["optimize", "--target", "fortran", "(+ 1 2)"]).status.success());
    assert!(!liar(&["explain", "(((("]).status.success());
    assert!(!liar(&["dot", "not-a-kernel-or-expr ("]).status.success());
}

#[test]
fn explain_prints_a_replayed_certificate() {
    let out = liar(&["explain", "vsum", "--target", "blas", "--steps", "6"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    // A numbered proof from the source kernel to the dot lifting…
    assert!(stdout.contains("   0: (ifold #8 0"), "{stdout}");
    assert!(stdout.contains("idiom-dot"), "{stdout}");
    assert!(stdout.contains("[1 × dot]"), "{stdout}");
    // …that the CLI replayed before claiming success.
    assert!(stdout.contains("proof replayed OK"), "{stdout}");
}

#[test]
fn explain_accepts_raw_expressions() {
    let out = liar(&[
        "explain",
        "--target",
        "pytorch",
        "--steps",
        "6",
        "(ifold #16 0 (lam (lam (+ (get xs %1) %0))))",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 × sum"), "{stdout}");
    assert!(stdout.contains("proof replayed OK"), "{stdout}");
}

#[test]
fn dot_renders_the_proof_path() {
    let out = liar(&[
        "dot",
        "--steps",
        "6",
        "--explain",
        "(ifold #4 0 (lam (lam (+ (get xs %1) %0))))",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("digraph egraph"), "{stdout}");
    // The certificate path is emphasized: bold classes and red edges.
    assert!(stdout.contains("style=bold; color=red"), "{stdout}");
    assert!(stdout.contains(", color=red]"), "{stdout}");
    // Without --explain nothing is highlighted.
    let plain = liar(&["dot", "--steps", "2", "(+ a b)"]);
    assert!(plain.status.success());
    let plain = String::from_utf8(plain.stdout).unwrap();
    assert!(plain.starts_with("digraph egraph"), "{plain}");
    assert!(!plain.contains("style=bold"), "{plain}");
}

#[test]
fn optimize_verbose_prints_top_rules() {
    let out = liar(&[
        "optimize",
        "--verbose",
        "--steps",
        "5",
        "--target",
        "blas",
        "(ifold #16 0 (lam (lam (+ (get xs %1) %0))))",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("rule applications ("), "{stdout}");
    assert!(stdout.contains("× idiom-dot"), "{stdout}");
    // Zero-application rules are not listed.
    assert!(!stdout.contains(" 0 × "), "{stdout}");
}

#[test]
fn usage_errors_exit_2() {
    for args in [
        &["optimize", "--bogus", "(+ 1 2)"][..], // unknown flag
        &["optimize"],                           // missing positional
        &["optimize", "--steps"],                // missing flag value
        &["optimize", "--steps", "abc", "(+ 1 2)"], // non-numeric value
        &["help", "not-a-command"],
        &["submit"], // no program and no admin op
    ] {
        let out = liar(args);
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn help_lists_commands_and_flags() {
    let out = liar(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for cmd in ["optimize", "kernel", "emit-c", "kernels", "explain", "dot", "serve", "submit"] {
        assert!(stdout.contains(cmd), "global help missing {cmd}: {stdout}");
    }
    let out = liar(&["help", "optimize"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for flag in ["--target", "--targets", "--all-targets", "--steps", "--threads"] {
        assert!(stdout.contains(flag), "optimize help missing {flag}: {stdout}");
    }
    // `help` with no command behaves like --help and exits 0; a bare
    // `liar` prints the same text but exits 2 (it did not do anything).
    assert!(liar(&["help"]).status.success());
    assert_eq!(liar(&[]).status.code(), Some(2));
}

/// End-to-end through the real binaries: start `liar serve` on an
/// ephemeral loopback port, drive it with `liar submit`, and shut it
/// down over the protocol.
#[test]
fn serve_and_submit_roundtrip() {
    use std::io::BufRead;

    let mut server = Command::new(env!("CARGO_BIN_EXE_liar"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("daemon starts");
    // The first stdout line announces the bound address.
    let stdout = server.stdout.take().expect("piped stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines.next().expect("banner line").unwrap();
    let addr = banner
        .rsplit_once(' ')
        .map(|(_, addr)| addr.to_string())
        .expect("address in banner");

    let submit = |extra: &[&str]| {
        let mut args = vec!["submit", "--addr", &addr];
        args.extend_from_slice(extra);
        liar(&args)
    };

    let out = submit(&["--ping"]);
    assert!(out.status.success(), "{out:?}");

    let out = submit(&["--kernel", "vsum", "--targets", "blas", "--steps", "6"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("cache: miss"), "{text}");
    assert!(text.contains("1 × dot"), "{text}");

    let out = submit(&["--kernel", "vsum", "--targets", "blas", "--steps", "6"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("cache: hit"), "{text}");

    // The explain op, end to end: a fresh fingerprint (miss, not a hit
    // of the plain run) whose solution carries the printed certificate.
    let out = submit(&["--kernel", "vsum", "--targets", "blas", "--steps", "6", "--explain"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("cache: miss"), "{text}");
    assert!(text.contains("proof ("), "{text}");
    assert!(text.contains("idiom-dot"), "{text}");

    let out = submit(&["--stats"]);
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("1 hits"), "{text}");

    // Unreachable daemons are a runtime failure (exit 1), not a usage
    // error.
    let out = liar(&["submit", "--addr", "127.0.0.1:1", "--ping"]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    let out = submit(&["--shutdown"]);
    assert!(out.status.success(), "{out:?}");
    let status = server.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "{status:?}");
}
