//! Property test for the crown-jewel invariant: equality saturation with
//! the full LIAR rule sets is *semantics-preserving* on arbitrary
//! programs, not just the evaluation kernels. Random closed array programs
//! are generated, saturated for a few steps under each target, and the
//! extracted best expression must evaluate to the same value as the
//! original.

use std::collections::HashMap;

use proptest::prelude::*;

use liar::core::{Liar, Target};
use liar::ir::{dsl, Expr};
use liar::kernels::values_approx_eq;
use liar::runtime::{eval, Tensor, Value};

const N: usize = 4;

/// Scalar-valued expressions in a context with `depth` integer binders
/// (loop indices) in scope.
fn arb_scalar(depth: u32, rec: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-2..3i32).prop_map(|v| dsl::num(v as f64)),
        Just(dsl::get(dsl::sym("xs"), dsl::num(0.0))),
        (0..depth.max(1)).prop_map(move |i| {
            if depth == 0 {
                dsl::num(1.0)
            } else {
                // Use a loop index as a scalar.
                dsl::var(i)
            }
        }),
    ];
    if rec == 0 {
        return leaf.boxed();
    }
    let inner = arb_scalar(depth, rec - 1);
    let inner2 = arb_scalar(depth + 1, rec - 1);
    prop_oneof![
        3 => leaf,
        2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| dsl::add(a, b)),
        2 => (inner.clone(), inner.clone()).prop_map(|(a, b)| dsl::mul(a, b)),
        1 => (arb_vector(depth, rec - 1), 0..N).prop_map(|(v, i)| {
            dsl::get(v, dsl::num(i as f64))
        }),
        1 => inner2.clone().prop_map(|body| {
            // ifold over a scalar accumulator: body may use %0 (acc) and
            // %1 (index) — shift the generated body under two binders.
            let body = liar::ir::debruijn::shift_up(&body, 2);
            dsl::ifold(N, dsl::num(0.0), dsl::lam(dsl::lam(dsl::add(body, dsl::var(0)))))
        }),
    ]
    .boxed()
}

/// Vector-valued expressions (length N).
fn arb_vector(depth: u32, rec: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        Just(dsl::sym("xs")),
        Just(dsl::sym("ys")),
        Just(dsl::constvec(N, dsl::num(0.0))),
    ];
    if rec == 0 {
        return leaf.boxed();
    }
    let scalar_under = arb_scalar(depth + 1, rec - 1);
    prop_oneof![
        2 => leaf,
        2 => scalar_under.prop_map(|body| dsl::build(N, dsl::lam(body))),
        1 => (arb_vector(depth, rec - 1), arb_vector(depth, rec - 1))
            .prop_map(|(a, b)| dsl::vadd(N, a, b)),
        1 => arb_vector(depth, rec - 1).prop_map(|a| dsl::vscale(N, dsl::num(2.0), a)),
    ]
    .boxed()
}

fn inputs() -> HashMap<String, Value> {
    [
        (
            "xs".to_string(),
            Value::from(Tensor::vector(vec![0.5, -1.0, 2.0, 0.25])),
        ),
        (
            "ys".to_string(),
            Value::from(Tensor::vector(vec![-0.5, 3.0, 1.0, -2.0])),
        ),
    ]
    .into()
}

fn check(expr: &Expr, target: Target) -> Result<(), TestCaseError> {
    let ins = inputs();
    let Ok(original) = eval(expr, &ins) else {
        // Generated an ill-formed program (e.g. scalar where the combinator
        // expected an array): skip.
        return Ok(());
    };
    let report = Liar::new(target)
        .with_iter_limit(3)
        .with_node_limit(20_000)
        .optimize(expr);
    for step in &report.steps {
        let optimized = eval(&step.best, &ins).map_err(|e| {
            TestCaseError::fail(format!(
                "step {} of {target} does not evaluate: {e}\n  {}",
                step.step, step.best
            ))
        })?;
        prop_assert!(
            values_approx_eq(&original, &optimized, 1e-6),
            "{target} step {} changed the program's meaning:\n  in:  {expr}\n  out: {}",
            step.step,
            step.best
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        ..ProptestConfig::default()
    })]

    #[test]
    fn saturation_preserves_semantics_blas(e in arb_vector(0, 2)) {
        check(&e, Target::Blas)?;
    }

    #[test]
    fn saturation_preserves_semantics_torch(e in arb_vector(0, 2)) {
        check(&e, Target::Torch)?;
    }

    #[test]
    fn saturation_preserves_semantics_scalar_programs(e in arb_scalar(0, 2)) {
        check(&e, Target::Blas)?;
    }
}
