//! Compile-and-run validation of the C backend: emitted pure-C kernels are
//! compiled with the system C compiler and their output compared against
//! the Rust runtime. (BLAS solutions would additionally need a CBLAS
//! install, so this exercises the loop-nest lowering only.)

use std::io::Write as _;
use std::process::Command;

use liar::codegen::{emit_kernel, CInput};
use liar::core::{Liar, Target};
use liar::kernels::Kernel;
use liar::runtime::eval;

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn compile_and_run(kernel: Kernel) {
    let n = kernel.search_size();
    let inputs = kernel.inputs(n, 0x5EED);
    let report = Liar::new(Target::PureC)
        .with_iter_limit(4)
        .optimize(&kernel.expr(n));
    let solution = &report.best().best;

    // Expected output via the Rust runtime.
    let expected = eval(solution, &inputs)
        .unwrap()
        .to_tensor()
        .expect("tensor result");

    // Emit the kernel and a main() that feeds it the same inputs.
    let mut names: Vec<&String> = inputs.keys().collect();
    names.sort();
    let c_inputs: Vec<CInput> = names
        .iter()
        .map(|name| {
            let t = inputs[name.as_str()].to_tensor().unwrap();
            if t.shape().is_empty() {
                CInput::scalar(name)
            } else {
                CInput::tensor(name, t.shape().to_vec())
            }
        })
        .collect();
    let kernel_c = emit_kernel("kernel", solution, &c_inputs).expect("emit");

    let mut main_c = String::from("#include <stdio.h>\n");
    main_c.push_str(&kernel_c);
    main_c.push_str("\nint main(void) {\n");
    let mut call_args = Vec::new();
    for name in &names {
        let t = inputs[name.as_str()].to_tensor().unwrap();
        if t.shape().is_empty() {
            main_c.push_str(&format!(
                "    double {name} = {:.17};\n",
                t.as_scalar()
            ));
        } else {
            let vals: Vec<String> = t.data().iter().map(|v| format!("{v:.17}")).collect();
            main_c.push_str(&format!(
                "    static double {name}[{}] = {{{}}};\n",
                t.len(),
                vals.join(", ")
            ));
        }
        call_args.push((**name).clone());
    }
    main_c.push_str(&format!(
        "    static double out[{}] = {{0}};\n",
        expected.len()
    ));
    call_args.push("out".to_string());
    main_c.push_str(&format!("    kernel({});\n", call_args.join(", ")));
    main_c.push_str(&format!(
        "    for (int i = 0; i < {}; i++) printf(\"%.17g\\n\", out[i]);\n",
        expected.len()
    ));
    main_c.push_str("    return 0;\n}\n");

    let dir = std::env::temp_dir().join(format!("liar_cc_{}", kernel.name()));
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("main.c");
    let bin = dir.join("main");
    std::fs::File::create(&src)
        .unwrap()
        .write_all(main_c.as_bytes())
        .unwrap();
    let status = Command::new("cc")
        .args(["-O1", "-o"])
        .arg(&bin)
        .arg(&src)
        .status()
        .expect("cc runs");
    assert!(status.success(), "C compilation failed for {kernel}");

    let output = Command::new(&bin).output().expect("binary runs");
    assert!(output.status.success());
    let got: Vec<f64> = String::from_utf8(output.stdout)
        .unwrap()
        .lines()
        .map(|l| l.parse().unwrap())
        .collect();
    assert_eq!(got.len(), expected.len(), "{kernel}: wrong output size");
    for (i, (g, e)) in got.iter().zip(expected.data()).enumerate() {
        assert!(
            (g - e).abs() <= 1e-9 * (1.0 + e.abs()),
            "{kernel}: out[{i}] = {g}, expected {e}"
        );
    }
}

macro_rules! cc_tests {
    ($($name:ident: $kernel:expr;)*) => {
        $(
            #[test]
            fn $name() {
                if !have_cc() {
                    eprintln!("skipping: no C compiler");
                    return;
                }
                compile_and_run($kernel);
            }
        )*
    };
}

cc_tests! {
    cc_axpy: Kernel::Axpy;
    cc_gemv: Kernel::Gemv;
    cc_vsum: Kernel::Vsum;
    cc_memset: Kernel::Memset;
    cc_jacobi1d: Kernel::Jacobi1d;
    cc_gesummv: Kernel::Gesummv;
    cc_one_mm: Kernel::OneMm;
}
