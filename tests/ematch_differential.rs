//! Differential tests for the e-matching VM: the compiled matcher
//! (`Pattern::match_class`) must be **provably equivalent** to the legacy
//! recursive oracle (`Pattern::match_class_oracle`) — identical match
//! sets, in identical order — on every shipped ruleset, and a whole
//! saturation run driven by oracle-matched rules must produce identical
//! solutions, costs and statistics to the VM-driven engine. If these
//! break, the VM changed what LIAR discovers.

use liar::core::rules::{named_rulesets, rules_for, RuleConfig, Target};
use liar::core::{Liar, TargetCost};
use liar::egraph::{
    BackoffScheduler, Binding, ClosureMemo, DeltaSearch, Extractor, Pattern, Rewrite, Runner,
    SearchMatches, Subst, SymbolLang,
};
use liar::ir::{dsl, ArrayAnalysis, ArrayEGraph, ArrayLang, Expr};
use liar::kernels::Kernel;

type AEGraph = ArrayEGraph;
type ARewrite = Rewrite<ArrayLang, ArrayAnalysis>;

/// The worked examples the paper walks through, plus two real kernels.
fn paper_examples() -> Vec<(Expr, Target)> {
    vec![
        // §V.A latent dot product in vector sum.
        (dsl::vsum(8, dsl::sym("xs")), Target::Blas),
        // §IV.C.2 constant-array construction (torch add + full).
        (
            "(build #8 (lam (+ (get xs %0) 42)))".parse().unwrap(),
            Target::Torch,
        ),
        // §VI gemv.
        (
            dsl::vadd(
                8,
                dsl::vscale(8, dsl::sym("alpha"), dsl::matvec(8, 8, dsl::sym("A"), dsl::sym("B"))),
                dsl::vscale(8, dsl::sym("beta"), dsl::sym("C")),
            ),
            Target::Blas,
        ),
        // A matrix kernel exercising sh1/sh2 shift patterns heavily.
        (Kernel::Atax.expr(8), Target::Blas),
        (Kernel::Mvt.expr(8), Target::Torch),
    ]
}

/// Ordered, binding-level equality of two substitution lists (classes are
/// compared through the union-find; expressions syntactically — the same
/// notion the engine's dedup uses).
fn assert_same_substs<L, A>(
    egraph: &liar::egraph::EGraph<L, A>,
    vm: &[Subst<L>],
    oracle: &[Subst<L>],
    context: &str,
) where
    L: liar::egraph::Language,
    A: liar::egraph::Analysis<L>,
{
    assert_eq!(vm.len(), oracle.len(), "{context}: match count diverged");
    let find = |id| egraph.find(id);
    for (i, (a, b)) in vm.iter().zip(oracle).enumerate() {
        assert!(
            a.same_as(b, &find),
            "{context}: substitution {i} diverged\n  vm:     {a:?}\n  oracle: {b:?}"
        );
        // `same_as` is order-insensitive; additionally pin the binding
        // order (first-occurrence) so the engines stay bit-compatible.
        let order = |s: &Subst<L>| s.iter().map(|(v, _)| *v).collect::<Vec<_>>();
        assert_eq!(order(a), order(b), "{context}: binding order diverged");
    }
}

/// Sweep every pattern rule of `rules` over every e-class of `egraph`,
/// asserting VM ≡ oracle.
fn assert_vm_equals_oracle(egraph: &AEGraph, rules: &[ARewrite], context: &str) {
    for rule in rules {
        let Some(pattern) = rule.searcher_pattern() else {
            continue; // Custom searcher: no pattern matching involved.
        };
        for class in egraph.class_ids() {
            let vm = pattern.match_class(egraph, class);
            let oracle = pattern.match_class_oracle(egraph, class);
            assert_same_substs(
                egraph,
                &vm,
                &oracle,
                &format!("{context}, rule {}, class {class}", rule.name()),
            );
        }
    }
}

/// Every shipped ruleset (core, scalar, blas, torch — the guard checks
/// live in blas/torch appliers and share their pattern searchers), matched
/// by both engines over saturating e-graphs of the paper examples.
#[test]
fn vm_equals_oracle_on_all_rulesets() {
    let config = RuleConfig::default();
    let rulesets = named_rulesets(&config);
    for (expr, target) in paper_examples() {
        // Saturate with the target's full rule set so the e-graphs grow
        // the shapes (shifted terms, idiom calls) the rulesets match.
        let rules = rules_for(target, &config);
        let mut eg = AEGraph::default();
        let root = eg.add_expr(&expr);
        let mut runner = Runner::new(eg)
            .with_root(root)
            .with_iter_limit(3)
            .with_node_limit(30_000)
            .with_scheduler(BackoffScheduler::new(2_000, 2));
        for step in 0..3 {
            for (name, ruleset) in &rulesets {
                assert_vm_equals_oracle(
                    &runner.egraph,
                    ruleset,
                    &format!("{expr} @{target} step {step} ruleset {name}"),
                );
            }
            if runner.run_one(&rules).is_err() {
                break;
            }
        }
    }
}

/// Whole-pipeline differential: saturating with rules whose searchers are
/// swapped for the oracle matcher must reproduce the VM engine's run
/// bit-for-bit — per-step statistics, extracted solution and cost — while
/// the VM visits strictly fewer candidate classes (the operator index at
/// work).
#[test]
fn saturation_identical_and_cheaper_with_vm() {
    for (kernel, target) in [
        (Kernel::Vsum, Target::Blas),
        (Kernel::Gemv, Target::Blas),
        (Kernel::Axpy, Target::Torch),
    ] {
        let expr = kernel.expr(8);
        let vm_rules = rules_for(target, &RuleConfig::default());
        let oracle_rules: Vec<ARewrite> =
            vm_rules.iter().map(|r| r.with_oracle_searcher()).collect();
        let run = |rules: &[ARewrite]| {
            let mut eg = AEGraph::default();
            let root = eg.add_expr(&expr);
            let mut runner = Runner::new(eg)
                .with_root(root)
                .with_iter_limit(5)
                .with_node_limit(50_000)
                .with_scheduler(BackoffScheduler::new(5_000, 2));
            runner.run(rules);
            let extractor = Extractor::new(&runner.egraph, TargetCost::new(target));
            let (cost, best) = extractor.find_best(root);
            (runner, cost, best)
        };
        let (vm, vm_cost, vm_best) = run(&vm_rules);
        let (oracle, oracle_cost, oracle_best) = run(&oracle_rules);

        assert_eq!(vm.stop_reason, oracle.stop_reason, "{kernel}");
        assert_eq!(vm.iterations.len(), oracle.iterations.len(), "{kernel}");
        for (v, o) in vm.iterations.iter().zip(&oracle.iterations) {
            assert_eq!(v.n_nodes, o.n_nodes, "{kernel} step {}", v.index);
            assert_eq!(v.n_classes, o.n_classes, "{kernel} step {}", v.index);
            assert_eq!(v.applied, o.applied, "{kernel} step {}", v.index);
            assert_eq!(v.rebuild_unions, o.rebuild_unions, "{kernel} step {}", v.index);
            assert_eq!(v.search_matches, o.search_matches, "{kernel} step {}", v.index);
        }
        assert_eq!(vm_cost, oracle_cost, "{kernel}: extraction cost diverged");
        assert_eq!(vm_best, oracle_best, "{kernel}: solution diverged");

        // The acceptance criterion: the operator index must make the VM
        // engine visit strictly fewer candidate classes.
        let visits = |r: &Runner<ArrayLang, ArrayAnalysis>| -> usize {
            r.iterations.iter().map(|i| i.search_candidates).sum()
        };
        assert!(
            visits(&vm) < visits(&oracle),
            "{kernel}: VM visited {} candidates, oracle {} — index ineffective",
            visits(&vm),
            visits(&oracle)
        );
    }
}

/// Shift patterns must flow through the VM's `Downshift` instructions and
/// agree with the oracle, including the non-linear (repeated-variable)
/// forms the idiom rules use.
#[test]
fn shift_patterns_differential() {
    use liar::egraph::machine::Instr;

    let mut eg = AEGraph::default();
    // A build whose body ignores the loop index in two ways, plus a
    // two-binder ifold — the shapes the blas/torch sh1/sh2 rules match.
    for s in [
        "(build #8 (lam 42))",
        "(build #8 (lam (get xs %1)))",
        "(build #8 (lam (* (get A %1) (get A %1))))",
        "(ifold #8 0 (lam (lam (+ (* (get xs %2) (get ys %2)) %0))))",
    ] {
        eg.add_expr(&s.parse().unwrap());
    }
    eg.rebuild();

    let patterns: Vec<Pattern<ArrayLang>> = [
        "(build ?n (lam (sh1 ?c)))",
        "(build ?n (lam (get (sh1 ?a) %0)))",
        "(build ?n (lam (* (get (sh1 ?a) %0) (get (sh1 ?a) %0))))",
        "(ifold ?n 0 (lam (lam (+ (* (get (sh2 ?a) %1) (get (sh2 ?b) %1)) %0))))",
        // Mixed binding kinds: ?a first as a class, then shifted.
        "(get ?a (get (sh1 ?a) %0))",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect();

    for p in &patterns {
        assert!(
            p.compiled()
                .instructions()
                .iter()
                .any(|i| matches!(
                    i,
                    Instr::Downshift { .. }
                        | Instr::DownshiftCompare { .. }
                        | Instr::DownshiftCompareClass { .. }
                )),
            "{p}: expected a Downshift-family instruction"
        );
        for class in eg.class_ids() {
            let vm = p.match_class(&eg, class);
            let oracle = p.match_class_oracle(&eg, class);
            assert_same_substs(&eg, &vm, &oracle, &format!("pattern {p}, class {class}"));
        }
    }
    // Sanity: the shift patterns actually match something here, so the
    // differential above is not vacuous.
    let full: Pattern<ArrayLang> = "(build ?n (lam (sh1 ?c)))".parse().unwrap();
    let hits: usize = eg
        .class_ids()
        .into_iter()
        .map(|c| full.match_class(&eg, c).len())
        .sum();
    assert!(hits >= 1, "shift pattern found no matches");
    // And at least one binding is an Expr (a downshifted term).
    let any_expr = eg.class_ids().into_iter().any(|c| {
        full.match_class(&eg, c)
            .iter()
            .flat_map(|s| s.iter())
            .any(|(_, b)| matches!(b, Binding::Expr(_)))
    });
    assert!(any_expr, "no Expr bindings produced by shift patterns");
}

/// Ordered equality of two whole search results (lists of per-class match
/// sets): same classes, same substitutions, same order.
fn assert_same_matches(
    egraph: &AEGraph,
    a: &[SearchMatches<ArrayLang>],
    b: &[SearchMatches<ArrayLang>],
    context: &str,
) {
    assert_eq!(a.len(), b.len(), "{context}: matched-class count diverged");
    for (ma, mb) in a.iter().zip(b) {
        assert_eq!(ma.class, mb.class, "{context}: class order diverged");
        assert_same_substs(
            egraph,
            ma.substs(),
            mb.substs(),
            &format!("{context}, class {}", ma.class),
        );
    }
}

/// The semi-naive wall, engine level: a [`DeltaSearch`] riding alongside a
/// stepping saturation must produce — on **every iteration**, for **every
/// rule** — the exact match stream of both the whole-graph VM engine and
/// the legacy oracle matcher, truncation included. This is the frontier
/// soundness argument (delta index + radius-`d-1` parent closure) tested
/// end-to-end on the paper's own examples, PolyBench kernels included.
#[test]
fn seminaive_equals_whole_graph_and_oracle_each_iteration() {
    let config = RuleConfig::default();
    // Tight enough to exercise truncation-carryover (pending classes),
    // loose enough that real idiom matches flow.
    let limit = 5_000;
    for (expr, target) in paper_examples() {
        let rules = rules_for(target, &config);
        let oracle_rules: Vec<ARewrite> =
            rules.iter().map(|r| r.with_oracle_searcher()).collect();
        let mut eg = AEGraph::default();
        let root = eg.add_expr(&expr);
        let mut runner = Runner::new(eg)
            .with_root(root)
            .with_iter_limit(3)
            .with_node_limit(30_000)
            .with_scheduler(BackoffScheduler::new(2_000, 2));
        let mut ds: DeltaSearch<ArrayLang> = DeltaSearch::new(rules.len());
        for step in 0..3 {
            let mut memo = ClosureMemo::default();
            for (i, rule) in rules.iter().enumerate() {
                let semi = ds.search_rule(&runner.egraph, rule, i, limit, &mut memo);
                let whole = rule.search(&runner.egraph, limit);
                assert_same_matches(
                    &runner.egraph,
                    &semi,
                    &whole,
                    &format!("{expr} @{target} step {step} rule {} (vs VM)", rule.name()),
                );
                let oracle = oracle_rules[i].search(&runner.egraph, limit);
                assert_same_matches(
                    &runner.egraph,
                    &semi,
                    &oracle,
                    &format!("{expr} @{target} step {step} rule {} (vs oracle)", rule.name()),
                );
            }
            if runner.run_one(&rules).is_err() {
                break;
            }
        }
    }
}

/// The semi-naive wall, pipeline level: for **every** evaluation kernel ×
/// target, a semi-naive run must reproduce the whole-graph run's per-step
/// reports (counts, applied tallies, matches), final solution and cost —
/// while never scanning more classes than it schedules.
#[test]
fn seminaive_pipeline_identical_on_all_kernels() {
    for kernel in Kernel::ALL {
        for target in [Target::Blas, Target::Torch] {
            let expr = kernel.expr(8);
            let run = |seminaive: bool| {
                Liar::new(target)
                    .with_iter_limit(3)
                    .with_node_limit(20_000)
                    .with_match_limit(2_000)
                    .with_seminaive(seminaive)
                    .optimize(&expr)
            };
            let semi = run(true);
            let whole = run(false);
            assert_eq!(semi.stop_reason, whole.stop_reason, "{kernel} @{target}");
            assert_eq!(semi.steps.len(), whole.steps.len(), "{kernel} @{target}");
            for (s, w) in semi.steps.iter().zip(&whole.steps) {
                let ctx = format!("{kernel} @{target} step {}", s.step);
                assert_eq!(s.n_nodes, w.n_nodes, "{ctx}");
                assert_eq!(s.n_classes, w.n_classes, "{ctx}");
                assert_eq!(s.applied, w.applied, "{ctx}");
                assert_eq!(s.search_candidates, w.search_candidates, "{ctx}");
                assert_eq!(s.search_matches, w.search_matches, "{ctx}");
                assert_eq!(s.best, w.best, "{ctx}: solution diverged");
                assert_eq!(s.cost, w.cost, "{ctx}: cost diverged");
                assert_eq!(s.lib_calls, w.lib_calls, "{ctx}");
                // Work accounting: whole-graph scans everything it
                // schedules; semi-naive never scans more.
                assert_eq!(w.frontier_candidates, w.search_candidates, "{ctx}");
                assert!(s.frontier_candidates <= s.search_candidates, "{ctx}");
            }
            let scanned: usize = semi.steps.iter().map(|s| s.frontier_candidates).sum();
            let scheduled: usize = semi.steps.iter().map(|s| s.search_candidates).sum();
            assert!(
                scanned <= scheduled,
                "{kernel} @{target}: frontier exceeded schedule"
            );
        }
    }
}

/// Deterministic splitmix64 generator (same construction the kernel-data
/// module uses) so the randomized differential below needs no external
/// crates and reproduces bit-for-bit.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Build a random SymbolLang term as an s-expression.
fn random_term(rng: &mut SplitMix64, depth: usize) -> String {
    let leaves = ["a", "b", "c", "d"];
    if depth == 0 || rng.below(3) == 0 {
        return leaves[rng.below(leaves.len())].to_string();
    }
    match rng.below(3) {
        0 => format!("(g {})", random_term(rng, depth - 1)),
        1 => format!(
            "(f {} {})",
            random_term(rng, depth - 1),
            random_term(rng, depth - 1)
        ),
        _ => format!(
            "(h {} {} {})",
            random_term(rng, depth - 1),
            random_term(rng, depth - 1),
            random_term(rng, depth - 1)
        ),
    }
}

/// Build a random pattern over the same operators (possibly non-linear:
/// the variable pool is small, so repeats are common).
fn random_pattern(rng: &mut SplitMix64, depth: usize) -> String {
    let atoms = ["?x", "?y", "?z", "a", "b"];
    if depth == 0 || rng.below(3) == 0 {
        return atoms[rng.below(atoms.len())].to_string();
    }
    match rng.below(3) {
        0 => format!("(g {})", random_pattern(rng, depth - 1)),
        1 => format!(
            "(f {} {})",
            random_pattern(rng, depth - 1),
            random_pattern(rng, depth - 1)
        ),
        _ => format!(
            "(h {} {} {})",
            random_pattern(rng, depth - 1),
            random_pattern(rng, depth - 1),
            random_pattern(rng, depth - 1)
        ),
    }
}

/// Randomized differential: random e-graphs (terms + unions), random
/// (frequently non-linear) patterns, VM ≡ oracle on every class. A seeded
/// in-test generator keeps this deterministic and dependency-free; the
/// proptest-gated variant in `liar-egraph/tests/prop_machine.rs` explores
/// further with shrinking when the `proptest` feature is enabled.
#[test]
fn randomized_symbol_lang_differential() {
    let mut rng = SplitMix64(0xC60_2024);
    let mut total_matches = 0usize;
    for round in 0..60 {
        let mut eg: liar::egraph::EGraph<SymbolLang, ()> = Default::default();
        let mut roots = Vec::new();
        for _ in 0..(2 + rng.below(5)) {
            let t: liar::egraph::RecExpr<SymbolLang> =
                random_term(&mut rng, 3).parse().unwrap();
            roots.push(eg.add_expr(&t));
        }
        for _ in 0..rng.below(4) {
            let a = roots[rng.below(roots.len())];
            let b = roots[rng.below(roots.len())];
            eg.union(a, b);
        }
        eg.rebuild();
        eg.assert_invariants();
        for _ in 0..6 {
            let p: Pattern<SymbolLang> = random_pattern(&mut rng, 3).parse().unwrap();
            for class in eg.class_ids() {
                let vm = p.match_class(&eg, class);
                let oracle = p.match_class_oracle(&eg, class);
                total_matches += vm.len();
                assert_same_substs(
                    &eg,
                    &vm,
                    &oracle,
                    &format!("round {round}, pattern {p}, class {class}"),
                );
            }
        }
    }
    assert!(
        total_matches > 100,
        "differential exercised too few matches ({total_matches})"
    );
}
