//! The parallel search engine's contract: multi-threaded saturation
//! produces **bit-identical** results to the serial engine — same solutions,
//! same per-step statistics, same scheduler (backoff/ban) behaviour — on
//! the paper's worked examples. If these break, `with_threads` silently
//! changes what LIAR discovers, which would invalidate every measurement
//! taken with it.

use liar::core::{Liar, OptimizationReport, Target};
use liar::egraph::{BackoffScheduler, Runner, Scheduler};
use liar::ir::{dsl, Expr};
use liar::kernels::Kernel;

fn optimize(expr: &Expr, target: Target, threads: usize) -> OptimizationReport {
    Liar::new(target)
        .with_iter_limit(6)
        .with_threads(threads)
        .optimize(expr)
}

/// Reports must agree step by step: statistics, extracted best expression,
/// cost, and library-call summary.
fn assert_reports_identical(serial: &OptimizationReport, parallel: &OptimizationReport) {
    assert_eq!(serial.stop_reason, parallel.stop_reason);
    assert_eq!(serial.steps.len(), parallel.steps.len());
    for (s, p) in serial.steps.iter().zip(&parallel.steps) {
        assert_eq!(s.step, p.step);
        assert_eq!(s.n_nodes, p.n_nodes, "step {}: e-node count diverged", s.step);
        assert_eq!(s.n_classes, p.n_classes, "step {}: class count diverged", s.step);
        assert_eq!(s.best, p.best, "step {}: extracted solution diverged", s.step);
        assert_eq!(s.cost, p.cost, "step {}: cost diverged", s.step);
        assert_eq!(s.lib_calls, p.lib_calls, "step {}: solutions diverged", s.step);
    }
}

#[test]
fn paper_examples_identical_across_thread_counts() {
    let programs: Vec<(Expr, Target)> = vec![
        // §V.A latent dot product in vector sum.
        (dsl::vsum(8, dsl::sym("xs")), Target::Blas),
        // §IV.C.2 constant-array construction (torch add + full).
        (
            "(build #8 (lam (+ (get xs %0) 42)))".parse().unwrap(),
            Target::Torch,
        ),
        // §VI gemv, both targets.
        (
            dsl::vadd(
                8,
                dsl::vscale(8, dsl::sym("alpha"), dsl::matvec(8, 8, dsl::sym("A"), dsl::sym("B"))),
                dsl::vscale(8, dsl::sym("beta"), dsl::sym("C")),
            ),
            Target::Blas,
        ),
    ];
    for (expr, target) in &programs {
        let serial = optimize(expr, *target, 1);
        for threads in [2, 4] {
            let parallel = optimize(expr, *target, threads);
            assert_reports_identical(&serial, &parallel);
        }
    }
}

#[test]
fn polybench_kernel_identical_at_four_threads() {
    // One real polybench kernel end to end (atax exercises matrix idioms,
    // transposes and the heaviest rule load of the fast kernels).
    let expr = Kernel::Atax.expr(8);
    let serial = optimize(&expr, Target::Blas, 1);
    let parallel = optimize(&expr, Target::Blas, 4);
    assert_reports_identical(&serial, &parallel);
    assert_eq!(
        serial.best().solution_summary(),
        parallel.best().solution_summary()
    );
}

/// The backoff scheduler's ban decisions depend only on per-rule match
/// counts; since the parallel engine merges matches to the exact serial
/// lists, bans must fire at the same (iteration, rule) points. Bans are
/// observed directly through a delegating spy around [`BackoffScheduler`].
#[test]
fn backoff_bans_identical_under_both_engines() {
    use std::sync::{Arc, Mutex};

    use liar::core::rules::{rules_for, RuleConfig};
    use liar::ir::ArrayEGraph;

    /// Delegates to a real backoff scheduler, logging every ban it issues.
    struct BanSpy {
        inner: BackoffScheduler,
        bans: Arc<Mutex<Vec<(usize, usize)>>>,
    }
    impl Scheduler for BanSpy {
        fn match_limit(
            &mut self,
            iteration: usize,
            rule_idx: usize,
            rule_name: &str,
        ) -> Option<usize> {
            let limit = self.inner.match_limit(iteration, rule_idx, rule_name);
            if limit.is_none() {
                self.bans.lock().unwrap().push((iteration, rule_idx));
            }
            limit
        }
        fn record(&mut self, iteration: usize, rule_idx: usize, n_matches: usize) {
            self.inner.record(iteration, rule_idx, n_matches);
        }
    }

    let expr = dsl::vsum(8, dsl::sym("xs"));
    let rules = rules_for(Target::Blas, &RuleConfig::default());
    let run = |threads: usize| {
        let bans = Arc::new(Mutex::new(Vec::new()));
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&expr);
        let mut runner = Runner::new(eg)
            .with_root(root)
            .with_iter_limit(6)
            // Tiny budget: busy rules exceed it and get banned.
            .with_scheduler(BanSpy {
                inner: BackoffScheduler::new(4, 2),
                bans: Arc::clone(&bans),
            })
            .with_threads(threads);
        runner.run(&rules);
        let bans = bans.lock().unwrap().clone();
        (runner, bans)
    };
    let (serial, serial_bans) = run(1);
    let (parallel, parallel_bans) = run(4);
    assert_eq!(serial.iterations.len(), parallel.iterations.len());
    for (s, p) in serial.iterations.iter().zip(&parallel.iterations) {
        assert_eq!(s.applied, p.applied, "step {}: applied counts diverged", s.index);
        assert_eq!(s.n_nodes, p.n_nodes);
    }
    assert_eq!(serial_bans, parallel_bans, "bans must fire identically");
    assert!(
        !serial_bans.is_empty(),
        "test should exercise at least one actual ban"
    );
}

/// The scheduler sees the same call sequence under both engines: all
/// `match_limit` calls for an iteration happen before any `record` call.
#[test]
fn scheduler_call_sequence_is_engine_independent() {
    use std::sync::{Arc, Mutex};

    type CallLog = Vec<(usize, &'static str, usize)>;

    #[derive(Clone, Default)]
    struct Spy {
        log: Arc<Mutex<CallLog>>,
    }
    impl Scheduler for Spy {
        fn match_limit(
            &mut self,
            iteration: usize,
            rule_idx: usize,
            _rule_name: &str,
        ) -> Option<usize> {
            self.log.lock().unwrap().push((iteration, "limit", rule_idx));
            Some(usize::MAX)
        }
        fn record(&mut self, iteration: usize, rule_idx: usize, _n: usize) {
            self.log.lock().unwrap().push((iteration, "record", rule_idx));
        }
    }

    let expr: Expr = "(+ (+ a b) c)".parse().unwrap();
    let rules = vec![
        liar::egraph::Rewrite::from_patterns("comm", "(+ ?x ?y)", "(+ ?y ?x)"),
        liar::egraph::Rewrite::from_patterns("assoc", "(+ (+ ?x ?y) ?z)", "(+ ?x (+ ?y ?z))"),
    ];
    let run = |threads: usize| {
        let spy = Spy::default();
        let log = Arc::clone(&spy.log);
        let mut eg = liar::ir::ArrayEGraph::default();
        eg.add_expr(&expr);
        let mut runner = Runner::new(eg)
            .with_iter_limit(3)
            .with_scheduler(spy)
            .with_threads(threads);
        runner.run(&rules);
        let log = log.lock().unwrap().clone();
        log
    };
    assert_eq!(run(1), run(4), "scheduler call sequences must agree");
}
