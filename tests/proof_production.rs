//! Proof production end to end: for each evaluation kernel and library
//! target, the explained pipeline must produce a proof that the source
//! kernel equals the extracted solution, and that proof must **replay** —
//! [`liar_egraph::Explanation::check`] re-derives every step against the
//! rule set actually used, so the lifting is a checked certificate, not a
//! trust-me log.

use liar::core::rules::rules_for;
use liar::core::{Liar, RuleConfig, Target};
use liar::egraph::explain::canonical_expr;
use liar::kernels::Kernel;

fn check_kernel(kernel: Kernel, target: Target, iter_limit: usize) {
    let expr = kernel.expr(kernel.search_size());
    let pipeline = Liar::new(target)
        .with_iter_limit(iter_limit)
        .with_node_limit(60_000);
    let (report, proof) = pipeline.optimize_explained(&expr);
    let best = &report.best().best;

    // The proof's endpoints are exactly the source and the solution.
    assert_eq!(
        proof.source,
        canonical_expr(&expr),
        "{kernel}/{target}: proof does not start at the source kernel"
    );
    assert_eq!(
        proof.target,
        canonical_expr(best),
        "{kernel}/{target}: proof does not end at the solution"
    );

    // …and it replays against the rules the run used.
    let rules = rules_for(target, &RuleConfig::default());
    if let Err(e) = proof.check(&rules) {
        panic!(
            "{kernel}/{target}: proof failed to replay: {e}\nsolution: {best}\nproof ({} steps):\n{proof}",
            proof.len()
        );
    }
    assert!(
        !report.best().lib_calls.is_empty() || target == Target::PureC,
        "{kernel}/{target}: no lifting found (solution {best}); the proof is vacuous"
    );
}

macro_rules! proof_tests {
    ($($test_name:ident: $kernel:expr, $iters:expr;)*) => {
        $(
            mod $test_name {
                use super::*;

                #[test]
                fn blas() {
                    check_kernel($kernel, Target::Blas, $iters);
                }

                #[test]
                fn pytorch() {
                    check_kernel($kernel, Target::Torch, $iters);
                }
            }
        )*
    };
}

proof_tests! {
    vsum: Kernel::Vsum, 6;
    axpy: Kernel::Axpy, 5;
    memset: Kernel::Memset, 4;
    gemv: Kernel::Gemv, 6;
    gesummv: Kernel::Gesummv, 5;
    atax: Kernel::Atax, 5;
    one_mm: Kernel::OneMm, 7;
    jacobi1d: Kernel::Jacobi1d, 6;
    blur1d: Kernel::Blur1d, 6;
    mvt: Kernel::Mvt, 5;
    slim_2mm: Kernel::Slim2mm, 6;
    doitgen: Kernel::Doitgen, 7;
}

/// The multi-target pipeline carries one proof per extracted solution.
#[test]
fn multi_target_solutions_carry_checkable_proofs() {
    let expr = Kernel::Vsum.expr(Kernel::Vsum.search_size());
    let report = Liar::new(Target::Blas)
        .with_iter_limit(6)
        .with_explanations(true)
        .optimize_multi(&expr, &Target::ALL, &[1.0])
        .expect("kernels are extractable for every target");
    let rules = liar::core::rules::rules_for_targets(&Target::ALL, &RuleConfig::default());
    for sol in &report.solutions {
        let proof = sol
            .proof
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no proof on explained run", sol.target));
        assert_eq!(proof.target, canonical_expr(&sol.best));
        proof
            .check(&rules)
            .unwrap_or_else(|e| panic!("{}: proof failed to replay: {e}", sol.target));
    }
}

/// With explanations off, proofs are absent and nothing else changes.
#[test]
fn explanations_off_reports_have_no_proofs() {
    let expr = Kernel::Vsum.expr(Kernel::Vsum.search_size());
    let report = Liar::new(Target::Blas)
        .with_iter_limit(6)
        .optimize_multi(&expr, &Target::ALL, &[1.0])
        .expect("kernels are extractable for every target");
    assert!(report.solutions.iter().all(|s| s.proof.is_none()));
}

/// The explained pipeline finds the same liftings as the fast path (same
/// rules, same budgets — only the provenance bookkeeping differs).
#[test]
fn explained_solutions_match_fast_path_liftings() {
    for (kernel, iters) in [(Kernel::Vsum, 6), (Kernel::Gemv, 6)] {
        for target in [Target::Blas, Target::Torch] {
            let expr = kernel.expr(kernel.search_size());
            let fast = Liar::new(target).with_iter_limit(iters).optimize(&expr);
            let (explained, _) = Liar::new(target)
                .with_iter_limit(iters)
                .optimize_explained(&expr);
            assert_eq!(
                fast.best().lib_calls,
                explained.best().lib_calls,
                "{kernel}/{target}: explained run found a different lifting"
            );
        }
    }
}
