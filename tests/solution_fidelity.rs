//! Numeric cross-check: proofs and numerics must agree. For every
//! evaluation kernel × target, the multi-target pipeline's extracted
//! solutions — both the tree-extracted `best` and the DAG-extracted
//! `dag_best` — are executed with `liar-runtime` on seeded random inputs
//! and compared against the *source expression's* own evaluation under
//! a combined absolute/relative tolerance.
//!
//! This is the semantic complement of `tests/proof_production.rs`: that
//! suite replays the rewrite certificate (syntactic derivability), this
//! one checks the endpoints actually compute the same function on data.

use std::collections::HashMap;

use liar::core::{Liar, Target};
use liar::ir::Expr;
use liar::kernels::Kernel;
use liar::runtime::{exec, Value};

/// Seeds for the random input draws (distinct from the `0xBEEF` /
/// `0xC60` seeds other suites use).
const SEEDS: [u64; 3] = [0x5EED_0001, 0x5EED_0002, 0xFEED_CAFE];

const ABS_TOL: f64 = 1e-9;
const REL_TOL: f64 = 1e-9;

/// Combined absolute/relative comparison, tuples componentwise and
/// everything else flattened to tensors: `|a - b| <= ABS_TOL + REL_TOL *
/// max(|a|, |b|)` elementwise. The relative term matters for stencil and
/// matmul chains whose magnitudes grow with the kernel size.
fn values_close(a: &Value, b: &Value) -> Result<(), String> {
    match (a, b) {
        (Value::Tuple(p), Value::Tuple(q)) => {
            values_close(&p.0, &q.0).map_err(|e| format!("first: {e}"))?;
            values_close(&p.1, &q.1).map_err(|e| format!("second: {e}"))
        }
        _ => {
            let (x, y) = match (a.to_tensor(), b.to_tensor()) {
                (Some(x), Some(y)) => (x, y),
                _ => return Err("values do not flatten to tensors".to_string()),
            };
            if x.shape() != y.shape() {
                return Err(format!("shape {:?} vs {:?}", x.shape(), y.shape()));
            }
            for (i, (u, v)) in x.data().iter().zip(y.data()).enumerate() {
                let bound = ABS_TOL + REL_TOL * u.abs().max(v.abs());
                if (u - v).abs() > bound {
                    return Err(format!(
                        "element {i}: {u} vs {v} (|Δ| = {} > {bound})",
                        (u - v).abs()
                    ));
                }
            }
            Ok(())
        }
    }
}

fn eval(expr: &Expr, inputs: &HashMap<String, Value>, what: &str) -> Value {
    exec::run(expr, inputs)
        .unwrap_or_else(|e| panic!("{what} failed to execute: {e}\n  expr: {expr}"))
        .0
}

/// Saturate once, extract every target, and check each solution's
/// numerics against the source on every seed.
fn check_kernel(kernel: Kernel, iter_limit: usize) {
    let n = kernel.search_size();
    let source = kernel.expr(n);
    let report = Liar::new(Target::Blas)
        .with_iter_limit(iter_limit)
        .with_node_limit(60_000)
        .optimize_multi(&source, &Target::ALL, &[1.0])
        .expect("kernels are extractable for every target");

    for &seed in &SEEDS {
        let inputs = kernel.inputs(n, seed);
        let expected = eval(&source, &inputs, &format!("{kernel} source"));
        for sol in &report.solutions {
            for (label, expr) in [("best", &sol.best), ("dag_best", &sol.dag_best)] {
                let got = eval(expr, &inputs, &format!("{kernel}/{} {label}", sol.target));
                values_close(&got, &expected).unwrap_or_else(|e| {
                    panic!(
                        "{kernel}/{}/{label} (seed {seed:#x}): solution disagrees with the \
                         source: {e}\n  solution [{}]: {expr}",
                        sol.target,
                        sol.solution_summary(),
                    )
                });
            }
        }
    }
}

macro_rules! fidelity_tests {
    ($($test_name:ident: $kernel:expr, $iters:expr;)*) => {
        $(
            #[test]
            fn $test_name() {
                check_kernel($kernel, $iters);
            }
        )*
    };
}

fidelity_tests! {
    vsum: Kernel::Vsum, 6;
    axpy: Kernel::Axpy, 5;
    memset: Kernel::Memset, 4;
    gemv: Kernel::Gemv, 6;
    gesummv: Kernel::Gesummv, 5;
    atax: Kernel::Atax, 5;
    one_mm: Kernel::OneMm, 7;
    jacobi1d: Kernel::Jacobi1d, 6;
    blur1d: Kernel::Blur1d, 6;
    mvt: Kernel::Mvt, 5;
    slim_2mm: Kernel::Slim2mm, 6;
    doitgen: Kernel::Doitgen, 7;
}

/// The tolerance actually has teeth: a perturbed solution fails.
#[test]
fn comparator_rejects_wrong_values() {
    let kernel = Kernel::Vsum;
    let n = kernel.search_size();
    let inputs = kernel.inputs(n, SEEDS[0]);
    let source = kernel.expr(n);
    let expected = eval(&source, &inputs, "vsum source");
    // vsum + 1 is not vsum.
    let off_by_one: Expr = format!("(+ {source} 1)").parse().unwrap();
    let got = eval(&off_by_one, &inputs, "perturbed vsum");
    assert!(values_close(&got, &expected).is_err());
}
