//! The paper-faithful exhaustive instantiation mode (§IV.B.4): every
//! e-class is a candidate for the free right-hand-side variables of the
//! intro rules. This explodes the e-graph — which is the paper's observed
//! behaviour (10⁴–10⁵ e-nodes within a handful of steps) — so it runs
//! here on the smallest kernel only, with a node budget.

use liar::core::rules::RuleConfig;
use liar::core::{Liar, Target};
use liar::ir::dsl;
use liar::kernels::values_approx_eq;
use liar::runtime::{eval, Tensor, Value};

#[test]
fn exhaustive_intro_still_finds_the_dot_and_stays_sound() {
    let n = 4;
    let vsum = dsl::vsum(n, dsl::sym("xs"));
    let bounded = Liar::new(Target::Blas)
        .with_iter_limit(5)
        .optimize(&vsum);
    let exhaustive = Liar::new(Target::Blas)
        .with_rule_config(RuleConfig::exhaustive())
        .with_iter_limit(5)
        .with_node_limit(30_000)
        .with_match_limit(4_000)
        .optimize(&vsum);

    // Exhaustive instantiation grows the e-graph much faster…
    let bounded_nodes = bounded.best().n_nodes;
    let exhaustive_nodes = exhaustive.best().n_nodes;
    assert!(
        exhaustive_nodes > 4 * bounded_nodes,
        "exhaustive should explode: {exhaustive_nodes} vs {bounded_nodes}"
    );

    // …while the bounded default already found the latent dot product
    // (exhaustive mode needs far more steps for the same discovery —
    // which is exactly why the default bounds the candidate sets)…
    assert_eq!(bounded.best().lib_calls.get("dot"), Some(&1));

    // …and exhaustive instantiation remains semantics-preserving at every
    // step despite all the junk equalities it installs.
    let inputs = [(
        "xs".to_string(),
        Value::from(Tensor::vector(vec![1.0, -2.0, 4.0, 0.5])),
    )]
    .into();
    let expected = eval(&vsum, &inputs).unwrap();
    for step in &exhaustive.steps {
        let got = eval(&step.best, &inputs).unwrap();
        assert!(
            values_approx_eq(&expected, &got, 1e-9),
            "step {} broke semantics: {}",
            step.step,
            step.best
        );
    }
}

#[test]
fn tuple_intro_rules_fire_in_exhaustive_mode() {
    // In bounded mode the tuple intro rules are dormant unless tuples
    // exist; exhaustively they pair every class.
    use liar::core::rules::{core_rules, RuleConfig};
    use liar::egraph::Runner;
    use liar::ir::ArrayEGraph;

    let mut eg = ArrayEGraph::default();
    let root = eg.add_expr(&"(+ x y)".parse().unwrap());
    let mut runner = Runner::new(eg).with_iter_limit(1);
    runner.run(&core_rules(&RuleConfig::exhaustive()));
    // x is now also fst (tuple x b) for every class b.
    let wrapped = runner
        .egraph
        .lookup_expr(&"(fst (tuple (+ x y) x))".parse().unwrap());
    assert_eq!(wrapped, Some(runner.egraph.find(root)));
}
