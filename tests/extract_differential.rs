//! Differential tests for the extraction subsystem (ISSUE 3 acceptance):
//!
//! 1. **Saturate once, extract everywhere is lossless:** per-target
//!    solutions extracted by [`Liar::optimize_multi`] from one union
//!    saturation are bit-identical (same expression, same cost) to the
//!    per-target pipelines it replaces.
//! 2. **DAG cost ≤ tree cost everywhere:** on the saturated e-graph of
//!    every tested kernel, for every extractable class, under every
//!    target cost model.
//! 3. **Tree and DAG extraction agree on trees:** when the best term
//!    references every (cost-bearing) class once, costs and expressions
//!    coincide.

use liar::core::{Liar, Target};
use liar::egraph::{DagExtractor, Extract, Extractor};
use liar::ir::{dsl, ArrayEGraph, Expr};
use liar::kernels::Kernel;
use liar_core::rules::{rules_for, RuleConfig};
use liar_core::TargetCost;
use liar_egraph::{BackoffScheduler, Runner};

/// The kernels the differential suite sweeps: the paper's flagship
/// (`gemv`), two PolyBench kernels with distinct shapes, and the §I
/// motivating example.
const KERNELS: [Kernel; 4] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax, Kernel::Mvt];

fn pipeline(target: Target) -> Liar {
    Liar::new(target)
        .with_iter_limit(8)
        .with_node_limit(150_000)
        .with_match_limit(30_000)
}

#[test]
fn multi_target_solutions_are_bit_identical_to_per_target_pipelines() {
    for kernel in KERNELS {
        let expr = kernel.expr(kernel.search_size());
        let multi = pipeline(Target::Blas)
        .optimize_multi(&expr, &Target::ALL, &[1.0])
        .expect("kernels are extractable for every target");
        for target in Target::ALL {
            // Pure C is the one target whose standalone pipeline runs a
            // *smaller* ruleset (core + scalar only), and atax is the one
            // kernel where that matters: the standalone run *saturates*
            // (144 nodes, cost 7457) in under the iteration budget, while
            // the union run — a strict rule superset — always stops on
            // its iteration limit mid-normalization (2097 nodes at the
            // suite's budgets, cost 7649). Probing iteration, node and
            // match budgets at up to 16/1.2M/10M does not close the gap:
            // the idiom and intro rules expand the union frontier faster
            // than the pure-C loop-normalization chain completes, so the
            // divergence is a structural property of union saturation on
            // this kernel, not truncation tuning. Library-call solutions
            // are exact everywhere (see docs/EXTRACTION.md, "Fidelity").
            // The asserts below pin the boundary: if a future rules or
            // scheduler change makes them fail with equal costs, parity
            // is restored — delete this arm.
            if target == Target::PureC && kernel == Kernel::Atax {
                let single = pipeline(target).optimize(&expr);
                let sb = single.best();
                let mb = multi.solution(target).unwrap();
                assert!(mb.lib_calls.is_empty(), "pure C extracted a call");
                assert!(sb.lib_calls.is_empty(), "pure C extracted a call");
                assert!(
                    mb.cost >= sb.cost,
                    "atax/pure-c: the union run out-optimized the saturated \
                     standalone run — impossible unless extraction changed"
                );
                assert_eq!(
                    (mb.cost, sb.cost),
                    (7649.0, 7457.0),
                    "atax/pure-c: the parity boundary moved — re-probe the \
                     budget sweep and update or delete this exception"
                );
                continue;
            }
            let single = pipeline(target).optimize(&expr);
            let single_best = single.best();
            let multi_best = multi.solution(target).unwrap();
            assert_eq!(
                multi_best.best, single_best.best,
                "{kernel}/{target}: multi-target expression diverged from \
                 the per-target pipeline"
            );
            assert_eq!(
                multi_best.cost, single_best.cost,
                "{kernel}/{target}: multi-target cost diverged"
            );
            assert_eq!(multi_best.lib_calls, single_best.lib_calls);
        }
    }
}

#[test]
fn multi_target_discount_sweep_matches_per_scale_pipelines() {
    let expr = Kernel::Vsum.expr(Kernel::Vsum.search_size());
    let scales = [1.0, 2.0, 20.0];
    let multi = pipeline(Target::Blas)
        .optimize_multi(&expr, &[Target::Blas], &scales)
        .expect("kernels are extractable for every target");
    for scale in scales {
        let single = pipeline(Target::Blas)
            .with_discount_scale(scale)
            .optimize(&expr);
        let multi_best = multi.solution_at(Target::Blas, scale).unwrap();
        assert_eq!(multi_best.best, single.best().best, "scale {scale}");
        assert_eq!(multi_best.cost, single.best().cost, "scale {scale}");
    }
}

/// Saturate `expr` with `target`'s rules the way the benches do.
fn saturate(expr: &Expr, target: Target) -> (liar::ir::ArrayEGraph, liar_egraph::Id) {
    let mut eg = ArrayEGraph::default();
    let root = eg.add_expr(expr);
    let mut runner = Runner::new(eg)
        .with_root(root)
        .with_iter_limit(8)
        .with_node_limit(150_000)
        .with_scheduler(BackoffScheduler::new(30_000, 2));
    runner.run(&rules_for(target, &RuleConfig::default()));
    (runner.egraph, root)
}

#[test]
fn dag_cost_never_exceeds_tree_cost_on_kernels() {
    for kernel in KERNELS {
        let expr = kernel.expr(kernel.search_size());
        let (egraph, root) = saturate(&expr, Target::Blas);
        for target in Target::ALL {
            let cost_fn = TargetCost::new(target);
            let dag = DagExtractor::new(&egraph, cost_fn);
            let tree = dag.tree_extractor();
            let mut checked = 0usize;
            for class in egraph.classes() {
                match (tree.best_cost(class.id), Extract::best_cost(&dag, class.id)) {
                    (Some(t), Some(d)) => {
                        assert!(
                            d <= t + 1e-9,
                            "{kernel}/{target}: class {} has dag cost {d} > tree cost {t}",
                            class.id
                        );
                        checked += 1;
                    }
                    (None, None) => {}
                    (t, d) => panic!(
                        "{kernel}/{target}: class {} extractability diverged \
                         (tree: {t:?}, dag: {d:?})",
                        class.id
                    ),
                }
            }
            assert!(checked > 0, "{kernel}/{target}: nothing extractable");
            assert!(
                Extract::best_cost(&dag, root).is_some(),
                "{kernel}/{target}: root not extractable"
            );
        }
    }
}

#[test]
fn dag_extraction_discounts_a_shared_dot() {
    // The motivating example: one hoisted dot reused by both tuple arms.
    // Hash-consing makes both ifolds the same e-class, so the tree
    // extractor charges the dot twice while the DAG extractor charges it
    // once (plus the tuple node).
    let dot_loop = dsl::dot(64, dsl::sym("a"), dsl::sym("b"));
    let expr = dsl::tuple(dot_loop.clone(), dot_loop);
    let (egraph, root) = saturate(&expr, Target::Blas);
    let dag = DagExtractor::new(&egraph, TargetCost::new(Target::Blas));
    let (tree_cost, tree_best) = dag.tree_extractor().find_best(root);
    let (dag_cost, dag_best) = dag.find_best(root);
    assert_eq!(
        liar::core::pipeline::count_lib_calls(&tree_best).get("dot"),
        Some(&2),
        "tree extraction repeats the shared dot: {tree_best}"
    );
    // Both arms are one shared class: tree pays ~2× the dot, DAG ~1×.
    assert!(
        dag_cost < tree_cost,
        "sharing must be discounted: dag {dag_cost} vs tree {tree_cost}"
    );
    let dot_cost = tree_cost - 1.0; // tuple node costs 1 on top of the arms
    assert!(
        (dag_cost - (dot_cost / 2.0 + 1.0)).abs() < 1e-9,
        "dag cost {dag_cost} should charge one dot arm once (tree {tree_cost})"
    );
    // The flat DAG expression stores the shared arm once.
    assert!(dag_best.len() < tree_best.len());
}

#[test]
fn tree_and_dag_agree_on_unshared_terms() {
    // Terms whose only repeated classes are extent leaves (marginal 0):
    // the marginals telescope and the accountings coincide exactly.
    for text in ["(get a i)", "(axpy #10 alpha A B)", "(tuple x y)"] {
        let expr: Expr = text.parse().unwrap();
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&expr);
        for target in [Target::Blas, Target::PureC] {
            let cost_fn = TargetCost::new(target);
            let tree = Extractor::new(&eg, cost_fn);
            let dag = DagExtractor::new(&eg, cost_fn);
            let (t, d) = (tree.best_cost(root), Extract::best_cost(&dag, root));
            if t.is_none() {
                // axpy is not available under pure C: both must agree.
                assert!(d.is_none(), "{text}/{target}");
                continue;
            }
            assert_eq!(t, d, "{text}/{target}: tree and dag costs diverged");
            assert_eq!(
                tree.find_best(root).1,
                dag.find_best(root).1,
                "{text}/{target}: expressions diverged"
            );
        }
    }
}
