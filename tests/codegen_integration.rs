//! Integration of the search with the C backend: discovered BLAS solutions
//! lower to CBLAS calls; pure-C solutions lower to loop nests.

use liar::codegen::{emit_kernel, CInput};
use liar::core::{Liar, Target};
use liar::ir::dsl;
use liar::kernels::Kernel;

/// C inputs matching a kernel's named inputs at size n.
fn c_inputs(kernel: Kernel, n: usize) -> Vec<CInput> {
    kernel
        .inputs(n, 0)
        .iter()
        .map(|(name, value)| {
            let t = value.to_tensor().expect("tensor input");
            match t.shape().len() {
                0 => CInput::scalar(name),
                _ => CInput::tensor(name, t.shape().to_vec()),
            }
        })
        .collect()
}

#[test]
fn gemv_blas_solution_emits_cblas_dgemv() {
    let kernel = Kernel::Gemv;
    let n = kernel.search_size();
    let report = Liar::new(Target::Blas).with_iter_limit(6).optimize(&kernel.expr(n));
    let c = emit_kernel("gemv_kernel", &report.best().best, &c_inputs(kernel, n)).unwrap();
    assert!(c.contains("cblas_dgemv"), "{c}");
    assert!(c.contains("void gemv_kernel"));
}

#[test]
fn vsum_blas_solution_emits_cblas_ddot() {
    let kernel = Kernel::Vsum;
    let n = kernel.search_size();
    let report = Liar::new(Target::Blas).with_iter_limit(6).optimize(&kernel.expr(n));
    let c = emit_kernel("vsum_kernel", &report.best().best, &c_inputs(kernel, n)).unwrap();
    assert!(c.contains("cblas_ddot"), "{c}");
    // The ones vector is built by a loop (or memset-like fill).
    assert!(c.contains("for ("));
}

#[test]
fn pure_c_solutions_emit_only_loops() {
    for kernel in [Kernel::Gemv, Kernel::Axpy, Kernel::Vsum] {
        let n = kernel.search_size();
        let report = Liar::new(Target::PureC)
            .with_iter_limit(4)
            .optimize(&kernel.expr(n));
        let c = emit_kernel("k", &report.best().best, &c_inputs(kernel, n))
            .unwrap_or_else(|e| panic!("{kernel}: {e}"));
        assert!(!c.contains("cblas"), "{kernel} pure C should not call BLAS");
        assert!(c.contains("for ("), "{kernel} should have loops");
    }
}

#[test]
fn memset_solution_uses_libc_memset() {
    let kernel = Kernel::Memset;
    let report = Liar::new(Target::Blas)
        .with_iter_limit(4)
        .optimize(&kernel.expr(64));
    let c = emit_kernel("zeros", &report.best().best, &[]).unwrap();
    assert!(c.contains("memset("), "{c}");
}

#[test]
fn unoptimized_kernels_lower_directly() {
    // Every kernel's *input* expression must lower to pure C (tuples — mvt
    // — are the documented exception).
    for kernel in Kernel::ALL {
        if kernel == Kernel::Mvt {
            continue;
        }
        let n = kernel.search_size();
        let result = emit_kernel("k", &kernel.expr(n), &c_inputs(kernel, n));
        assert!(result.is_ok(), "{kernel}: {result:?}");
    }
}

#[test]
fn emitted_c_is_balanced() {
    // Cheap syntactic well-formedness: braces and parens balance.
    let expr = dsl::vadd(
        8,
        dsl::vscale(8, dsl::sym("a"), dsl::sym("X")),
        dsl::sym("Y"),
    );
    let c = emit_kernel(
        "k",
        &expr,
        &[
            CInput::scalar("a"),
            CInput::vector("X", 8),
            CInput::vector("Y", 8),
        ],
    )
    .unwrap();
    for (open, close) in [('{', '}'), ('(', ')'), ('[', ']')] {
        assert_eq!(
            c.matches(open).count(),
            c.matches(close).count(),
            "unbalanced {open}{close} in:\n{c}"
        );
    }
}
