//! The semi-naive search engine's contract: delta-frontier saturation
//! produces **bit-identical** results to the whole-graph engine — same
//! solutions, same per-step statistics and applied tallies, same scheduler
//! (backoff/ban) behaviour, same replayable proofs — on the paper's worked
//! examples and every evaluation kernel. If these break, the frontier
//! under-approximates (missed matches) or over-emits (phantom matches),
//! which would silently change what LIAR discovers. Mirrors
//! `parallel_determinism.rs`, which holds the same wall for `with_threads`.

use liar::core::{Liar, MultiReport, OptimizationReport, Target};
use liar::egraph::{BackoffScheduler, Runner, Scheduler};
use liar::ir::{dsl, Expr};
use liar::kernels::Kernel;

fn optimize(expr: &Expr, target: Target, seminaive: bool) -> OptimizationReport {
    Liar::new(target)
        .with_iter_limit(6)
        .with_seminaive(seminaive)
        .optimize(expr)
}

/// Reports must agree step by step on every semantic field — everything
/// except wall-clock timings and the `frontier_candidates` work statistic,
/// which are exactly the two things semi-naive search is *allowed* to
/// change.
fn assert_reports_identical(whole: &OptimizationReport, semi: &OptimizationReport) {
    assert_eq!(whole.stop_reason, semi.stop_reason);
    assert_eq!(whole.steps.len(), semi.steps.len(), "iteration count diverged");
    for (w, s) in whole.steps.iter().zip(&semi.steps) {
        assert_eq!(w.step, s.step);
        assert_eq!(w.n_nodes, s.n_nodes, "step {}: e-node count diverged", w.step);
        assert_eq!(w.n_classes, s.n_classes, "step {}: class count diverged", w.step);
        assert_eq!(w.applied, s.applied, "step {}: applied tallies diverged", w.step);
        assert_eq!(
            w.search_candidates, s.search_candidates,
            "step {}: scheduled candidates diverged",
            w.step
        );
        assert_eq!(
            w.search_matches, s.search_matches,
            "step {}: match counts diverged",
            w.step
        );
        assert_eq!(w.best, s.best, "step {}: extracted solution diverged", w.step);
        assert_eq!(w.cost, s.cost, "step {}: cost diverged", w.step);
        assert_eq!(w.lib_calls, s.lib_calls, "step {}: solutions diverged", w.step);
    }
}

#[test]
fn paper_examples_identical_with_and_without_seminaive() {
    let programs: Vec<(Expr, Target)> = vec![
        // §V.A latent dot product in vector sum.
        (dsl::vsum(8, dsl::sym("xs")), Target::Blas),
        // §IV.C.2 constant-array construction (torch add + full).
        (
            "(build #8 (lam (+ (get xs %0) 42)))".parse().unwrap(),
            Target::Torch,
        ),
        // §VI gemv.
        (
            dsl::vadd(
                8,
                dsl::vscale(8, dsl::sym("alpha"), dsl::matvec(8, 8, dsl::sym("A"), dsl::sym("B"))),
                dsl::vscale(8, dsl::sym("beta"), dsl::sym("C")),
            ),
            Target::Blas,
        ),
    ];
    for (expr, target) in &programs {
        let whole = optimize(expr, *target, false);
        let semi = optimize(expr, *target, true);
        assert_reports_identical(&whole, &semi);
    }
}

#[test]
fn polybench_kernel_identical_and_composes_with_threads() {
    // Atax exercises matrix idioms, transposes and the heaviest rule load
    // of the fast kernels; the two engine knobs must compose — semi-naive
    // parallel search equals whole-graph serial search.
    let expr = Kernel::Atax.expr(8);
    let whole = optimize(&expr, Target::Blas, false);
    let semi = optimize(&expr, Target::Blas, true);
    assert_reports_identical(&whole, &semi);
    assert_eq!(whole.best().solution_summary(), semi.best().solution_summary());

    let semi_parallel = Liar::new(Target::Blas)
        .with_iter_limit(6)
        .with_seminaive(true)
        .with_threads(4)
        .optimize(&expr);
    assert_reports_identical(&whole, &semi_parallel);
}

/// Multi-target runs: one saturation, every target's extraction — the
/// semi-naive [`MultiReport`] must be bit-identical to the whole-graph one
/// in every semantic field (per-step stats, solutions, DAG costs, proofs),
/// on **all** evaluation kernels.
#[test]
fn multireports_identical_on_all_kernels() {
    fn assert_multireports_identical(whole: &MultiReport, semi: &MultiReport, ctx: &str) {
        assert_eq!(whole.stop_reason, semi.stop_reason, "{ctx}");
        assert_eq!(whole.n_nodes, semi.n_nodes, "{ctx}");
        assert_eq!(whole.n_classes, semi.n_classes, "{ctx}");
        assert_eq!(whole.steps.len(), semi.steps.len(), "{ctx}");
        for (w, s) in whole.steps.iter().zip(&semi.steps) {
            assert_eq!(w.step, s.step, "{ctx}");
            assert_eq!(w.n_nodes, s.n_nodes, "{ctx} step {}", w.step);
            assert_eq!(w.n_classes, s.n_classes, "{ctx} step {}", w.step);
            assert_eq!(w.search_candidates, s.search_candidates, "{ctx} step {}", w.step);
            assert_eq!(w.search_matches, s.search_matches, "{ctx} step {}", w.step);
        }
        assert_eq!(whole.solutions.len(), semi.solutions.len(), "{ctx}");
        for (w, s) in whole.solutions.iter().zip(&semi.solutions) {
            let sctx = format!("{ctx} solution {:?}@{}", w.target, w.discount_scale);
            assert_eq!(w.target, s.target, "{sctx}");
            assert_eq!(w.discount_scale, s.discount_scale, "{sctx}");
            assert_eq!(w.best, s.best, "{sctx}: best diverged");
            assert_eq!(w.cost, s.cost, "{sctx}: cost diverged");
            // The DAG extractor's cost accumulation is float-summation-order
            // sensitive (hash-map iteration), so two runs of the *same*
            // engine already differ in the last ulp; compare within that
            // noise floor rather than bitwise.
            let tol = 1e-9 * w.dag_cost.abs().max(1.0);
            assert!(
                (w.dag_cost - s.dag_cost).abs() <= tol,
                "{sctx}: DAG cost diverged beyond float noise: {} vs {}",
                w.dag_cost,
                s.dag_cost
            );
            assert_eq!(w.lib_calls, s.lib_calls, "{sctx}: lib calls diverged");
            assert_eq!(w.proof, s.proof, "{sctx}: proof diverged");
        }
    }

    for kernel in Kernel::ALL {
        let expr = kernel.expr(8);
        let run = |seminaive: bool| {
            Liar::new(Target::Blas)
                .with_iter_limit(3)
                .with_node_limit(20_000)
                .with_match_limit(2_000)
                .with_seminaive(seminaive)
                .optimize_multi(&expr, &Target::ALL, &[1.0])
                .expect("kernels are extractable for every target")
        };
        assert_multireports_identical(&run(false), &run(true), kernel.name());
    }
}

/// Proof production under semi-naive search: identical replayable
/// explanations, and they still check against the rule set.
#[test]
fn proofs_identical_and_replayable_with_seminaive() {
    use liar::core::rules::{rules_for, RuleConfig};

    let expr = dsl::vsum(8, dsl::sym("xs"));
    let run = |seminaive: bool| {
        Liar::new(Target::Blas)
            .with_iter_limit(6)
            .with_seminaive(seminaive)
            .optimize_explained(&expr)
    };
    let (whole_report, whole_proof) = run(false);
    let (semi_report, semi_proof) = run(true);
    assert_eq!(whole_report.best().best, semi_report.best().best);
    assert_eq!(whole_proof, semi_proof, "explanations diverged");
    assert!(!semi_proof.steps.is_empty(), "proof should be non-trivial");
    let rules = rules_for(Target::Blas, &RuleConfig::default());
    semi_proof
        .check(&rules)
        .expect("semi-naive proof must replay against the ruleset");
}

/// The backoff scheduler's ban decisions depend only on per-rule match
/// counts; since semi-naive search emits the exact whole-graph match
/// stream, bans must fire at the same (iteration, rule) points — and a
/// banned iteration must not strand frontier entries (the dirt keeps
/// accumulating while the rule sits out).
#[test]
fn backoff_bans_identical_under_both_engines() {
    use std::sync::{Arc, Mutex};

    use liar::core::rules::{rules_for, RuleConfig};
    use liar::ir::ArrayEGraph;

    /// Delegates to a real backoff scheduler, logging every ban it issues.
    struct BanSpy {
        inner: BackoffScheduler,
        bans: Arc<Mutex<Vec<(usize, usize)>>>,
    }
    impl Scheduler for BanSpy {
        fn match_limit(
            &mut self,
            iteration: usize,
            rule_idx: usize,
            rule_name: &str,
        ) -> Option<usize> {
            let limit = self.inner.match_limit(iteration, rule_idx, rule_name);
            if limit.is_none() {
                self.bans.lock().unwrap().push((iteration, rule_idx));
            }
            limit
        }
        fn record(&mut self, iteration: usize, rule_idx: usize, n_matches: usize) {
            self.inner.record(iteration, rule_idx, n_matches);
        }
    }

    let expr = dsl::vsum(8, dsl::sym("xs"));
    let rules = rules_for(Target::Blas, &RuleConfig::default());
    let run = |seminaive: bool| {
        let bans = Arc::new(Mutex::new(Vec::new()));
        let mut eg = ArrayEGraph::default();
        let root = eg.add_expr(&expr);
        let mut runner = Runner::new(eg)
            .with_root(root)
            .with_iter_limit(6)
            // Tiny budget: busy rules exceed it and get banned.
            .with_scheduler(BanSpy {
                inner: BackoffScheduler::new(4, 2),
                bans: Arc::clone(&bans),
            })
            .with_seminaive(seminaive);
        runner.run(&rules);
        let bans = bans.lock().unwrap().clone();
        (runner, bans)
    };
    let (whole, whole_bans) = run(false);
    let (semi, semi_bans) = run(true);
    assert_eq!(whole.iterations.len(), semi.iterations.len());
    for (w, s) in whole.iterations.iter().zip(&semi.iterations) {
        assert_eq!(w.applied, s.applied, "step {}: applied counts diverged", w.index);
        assert_eq!(w.n_nodes, s.n_nodes);
        assert_eq!(w.search_matches, s.search_matches);
    }
    assert_eq!(whole_bans, semi_bans, "bans must fire identically");
    assert!(
        !whole_bans.is_empty(),
        "test should exercise at least one actual ban"
    );
}

/// The scheduler sees the same call sequence under both engines: all
/// `match_limit` calls for an iteration happen before any `record` call,
/// with identical reported counts.
#[test]
fn scheduler_call_sequence_is_engine_independent() {
    use std::sync::{Arc, Mutex};

    type CallLog = Vec<(usize, &'static str, usize, usize)>;

    #[derive(Clone, Default)]
    struct Spy {
        log: Arc<Mutex<CallLog>>,
    }
    impl Scheduler for Spy {
        fn match_limit(
            &mut self,
            iteration: usize,
            rule_idx: usize,
            _rule_name: &str,
        ) -> Option<usize> {
            self.log.lock().unwrap().push((iteration, "limit", rule_idx, 0));
            Some(usize::MAX)
        }
        fn record(&mut self, iteration: usize, rule_idx: usize, n: usize) {
            self.log.lock().unwrap().push((iteration, "record", rule_idx, n));
        }
    }

    let expr: Expr = "(+ (+ a b) c)".parse().unwrap();
    let rules = vec![
        liar::egraph::Rewrite::from_patterns("comm", "(+ ?x ?y)", "(+ ?y ?x)"),
        liar::egraph::Rewrite::from_patterns("assoc", "(+ (+ ?x ?y) ?z)", "(+ ?x (+ ?y ?z))"),
    ];
    let run = |seminaive: bool| {
        let spy = Spy::default();
        let log = Arc::clone(&spy.log);
        let mut eg = liar::ir::ArrayEGraph::default();
        eg.add_expr(&expr);
        let mut runner = Runner::new(eg)
            .with_iter_limit(3)
            .with_scheduler(spy)
            .with_seminaive(seminaive);
        runner.run(&rules);
        let log = log.lock().unwrap().clone();
        log
    };
    assert_eq!(run(false), run(true), "scheduler call sequences must agree");
}

/// Snapshot/restore composes with the semi-naive engine: a restored
/// graph's delta index is sealed (empty frontier at its own version,
/// full history before it), a new root dirties exactly its
/// genuinely-new sub-terms, and a [`DeltaSearch`] synced at the sealed
/// version emits precisely the whole-graph match stream for that
/// frontier — pinned three ways, against the compiled-VM whole-graph
/// engine and the recursive oracle matcher.
#[test]
fn restored_snapshots_resume_the_seminaive_frontier_exactly() {
    use liar::core::rules::{rules_for, RuleConfig};
    use liar::egraph::{ClosureMemo, DeltaSearch, SearchMatches};
    use liar::ir::{ArrayAnalysis, ArrayEGraph, ArrayLang};

    // Saturate a kernel that converges under the BLAS ruleset (the warm
    // soundness contract wants a saturated seed), then round trip it.
    let axpy = Kernel::Axpy.expr(8);
    let (original, _) = Liar::new(Target::Blas)
        .with_iter_limit(8)
        .with_node_limit(20_000)
        .saturate_for_targets(&axpy, &[Target::Blas]);
    let bytes = original.snapshot().expect("saturated graphs snapshot");
    let mut restored =
        ArrayEGraph::restore(ArrayAnalysis::default(), &bytes).expect("snapshot restores");

    // The sealed version: nothing is dirty after it, everything before.
    let sealed = restored.delta_version();
    assert!(
        restored.dirty_since(sealed).is_empty(),
        "restored graph must present an empty frontier at its sealed version"
    );
    assert_eq!(
        restored.dirty_since(0).len(),
        restored.num_classes(),
        "restored graph must keep its full delta history"
    );

    // A new root dirties exactly its genuinely-new sub-terms (shared
    // sub-terms hit the memo and stay sealed).
    let vsum = dsl::vsum(8, dsl::sym("xs"));
    let before = restored.num_classes();
    let root = restored.add_expr(&vsum);
    restored.rebuild();
    let mut dirty = restored.dirty_since(sealed);
    dirty.sort_unstable();
    assert_eq!(
        dirty.len(),
        restored.num_classes() - before,
        "frontier must be exactly the new root's new classes"
    );
    assert!(
        dirty.binary_search(&restored.find(root)).is_ok(),
        "the new root itself must sit on the frontier"
    );
    // The exact-restriction expectation below is only valid while the
    // planner takes the precise frontier path; a dirty set covering half
    // the graph makes it over-approximate to every class (sound, but a
    // different stream). Keep the fixture in the precise regime.
    assert!(
        dirty.len() * 2 < restored.num_classes(),
        "fixture drifted: frontier ({}) covers half the graph ({} classes)",
        dirty.len(),
        restored.num_classes()
    );

    // Three-way differential on the resumed graph, rule by rule.
    let rules = rules_for(Target::Blas, &RuleConfig::default());
    let mut ds: DeltaSearch<ArrayLang> = DeltaSearch::new_synced(rules.len(), sealed);
    let mut memo = ClosureMemo::default();
    let find = |id| restored.find(id);
    let mut frontier_matches = 0usize;
    for (i, rule) in rules.iter().enumerate() {
        let semi = ds.search_rule(&restored, rule, i, usize::MAX, &mut memo);
        let whole = rule.search(&restored, usize::MAX);
        // Stable pattern rules resume from the sealed frontier: their
        // stream is the whole-graph stream restricted to dirty classes
        // (sealed classes were already searched and applied by the seed
        // run). Rules whose fingerprint tracks global inputs, and custom
        // searchers, rescan everything — exactly like a cold engine.
        let expected: Vec<&SearchMatches<ArrayLang>> =
            if rule.delta_depth().is_none() || rule.delta_fingerprint(&restored) != 0 {
                whole.iter().collect()
            } else {
                whole
                    .iter()
                    .filter(|m| dirty.binary_search(&find(m.class)).is_ok())
                    .collect()
            };
        assert_eq!(
            semi.len(),
            expected.len(),
            "rule {}: frontier match-class count diverged",
            rule.name()
        );
        for (s, w) in semi.iter().zip(&expected) {
            assert_eq!(find(s.class), find(w.class), "rule {}: class diverged", rule.name());
            assert_eq!(
                s.substs().len(),
                w.substs().len(),
                "rule {}: match count diverged in class {:?}",
                rule.name(),
                s.class
            );
            for (a, b) in s.substs().iter().zip(w.substs()) {
                assert!(
                    a.same_as(b, &find),
                    "rule {}: substitution diverged in class {:?}",
                    rule.name(),
                    s.class
                );
            }
        }
        frontier_matches += semi.iter().map(|m| m.substs().len()).sum::<usize>();

        // ...and on every frontier class the compiled VM agrees with the
        // recursive oracle (the `ematch_differential.rs` idiom).
        if let Some(pattern) = rule.searcher_pattern() {
            for &class in &dirty {
                let vm = pattern.match_class(&restored, class);
                let oracle = pattern.match_class_oracle(&restored, class);
                assert_eq!(
                    vm.len(),
                    oracle.len(),
                    "rule {}: VM and oracle diverged on frontier class {class:?}",
                    rule.name()
                );
                for (a, b) in vm.iter().zip(&oracle) {
                    assert!(
                        a.same_as(b, &find),
                        "rule {}: VM and oracle substitutions diverged on {class:?}",
                        rule.name()
                    );
                }
            }
        }
    }
    assert!(
        frontier_matches > 0,
        "the new root should put at least one match on the frontier"
    );
}
