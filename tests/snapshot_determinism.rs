//! Snapshot round-trip wall (ISSUE 8 acceptance): a saturated e-graph
//! serialized with [`snapshot`] and brought back with [`restore`] must be
//! **behaviorally identical** to the original — same canonical class ids
//! (stable across one further `rebuild()`), bit-identical extraction
//! under every extractor (tree / DAG / exact) × every target cost model,
//! identical replayable proofs — for every evaluation kernel, with
//! serial and parallel saturation. Warm-started resumes must converge to
//! the cold run's answer, and corrupt bytes must fail with structured
//! errors, never panics.
//!
//! [`snapshot`]: liar::ir::ArrayEGraph::snapshot
//! [`restore`]: liar::ir::ArrayEGraph::restore

use liar::core::rules::{rules_for_targets, RuleConfig};
use liar::core::{Liar, Target, TargetCost};
use liar::egraph::{DagExtractor, ExactExtractor, Extractor, Id, SnapshotError, StopReason};
use liar::ir::{ArrayAnalysis, ArrayEGraph};
use liar::kernels::Kernel;

/// The deep-sweep subset (shared with `extract_differential.rs`): the
/// paper's flagship, two PolyBench kernels with distinct shapes, and the
/// §I motivating example.
const KERNELS: [Kernel; 4] = [Kernel::Vsum, Kernel::Gemv, Kernel::Atax, Kernel::Mvt];

/// Budgets of the `seminaive_determinism.rs` full-corpus sweep: enough
/// rewriting that every kernel grows a non-trivial graph, cheap enough
/// that all sixteen kernels fit one test.
fn sweep_pipeline() -> Liar {
    Liar::new(Target::Blas)
        .with_iter_limit(3)
        .with_node_limit(20_000)
        .with_match_limit(2_000)
}

fn restore(bytes: &[u8]) -> ArrayEGraph {
    ArrayEGraph::restore(ArrayAnalysis::default(), bytes).expect("snapshot restores")
}

/// DAG and exact costs accumulate floats in hash-map iteration order, so
/// two extractions of the *same* graph already differ in the last ulp;
/// compare within that noise floor (the idiom of the semi-naive wall).
fn assert_cost_close(a: f64, b: f64, ctx: &str) {
    let tol = 1e-9 * a.abs().max(1.0);
    assert!(
        (a - b).abs() <= tol,
        "{ctx}: cost diverged beyond float noise: {a} vs {b}"
    );
}

/// Every extractor must see the restored graph exactly as the original:
/// same best expression and cost under tree, DAG, and exact extraction.
fn assert_same_extraction(
    original: &ArrayEGraph,
    restored: &ArrayEGraph,
    root: Id,
    target: Target,
    ctx: &str,
) {
    let cost_fn = TargetCost::new(target);

    let (tree_cost, tree_best) = Extractor::new(original, cost_fn).find_best(root);
    let (r_cost, r_best) = Extractor::new(restored, cost_fn).find_best(root);
    assert_eq!(tree_best, r_best, "{ctx}: tree extraction diverged");
    assert_eq!(
        tree_cost.to_bits(),
        r_cost.to_bits(),
        "{ctx}: tree cost diverged: {tree_cost} vs {r_cost}"
    );

    let (dag_cost, dag_best) = DagExtractor::new(original, cost_fn).find_best(root);
    let (rd_cost, rd_best) = DagExtractor::new(restored, cost_fn).find_best(root);
    assert_eq!(dag_best, rd_best, "{ctx}: DAG extraction diverged");
    assert_cost_close(dag_cost, rd_cost, ctx);

    let exact = ExactExtractor::new(original, cost_fn).solve(root);
    let r_exact = ExactExtractor::new(restored, cost_fn).solve(root);
    match (exact, r_exact) {
        (Some(a), Some(b)) => {
            assert_eq!(a.expr, b.expr, "{ctx}: exact extraction diverged");
            assert_eq!(a.outcome, b.outcome, "{ctx}: exact outcome diverged");
            assert_eq!(
                a.reachable_classes, b.reachable_classes,
                "{ctx}: exact reachable-class count diverged"
            );
            assert_cost_close(a.cost, b.cost, ctx);
        }
        (None, None) => {}
        (a, b) => panic!("{ctx}: exact solvability diverged: {a:?} vs {b:?}"),
    }
}

/// The full corpus: saturate each kernel with the union ruleset of all
/// targets, round trip through bytes, and demand identical canonical
/// ids, byte-identical re-snapshot, and identical extraction everywhere.
#[test]
fn every_kernel_round_trips_to_identical_extraction() {
    for kernel in Kernel::ALL {
        let expr = kernel.expr(8);
        let (original, root) = sweep_pipeline().saturate_for_targets(&expr, &Target::ALL);
        let bytes = original.snapshot().expect("saturated graphs are clean");

        let mut restored = restore(&bytes);
        assert_eq!(restored.num_nodes(), original.num_nodes(), "{kernel}");
        assert_eq!(restored.num_classes(), original.num_classes(), "{kernel}");
        assert_eq!(restored.find(root), original.find(root), "{kernel}");

        // The format is a canonical function of the graph: re-snapshot
        // before anything touches the restored copy is byte-identical.
        assert_eq!(
            restored.snapshot().expect("restored graphs are clean"),
            bytes,
            "{kernel}: snapshot(restore(s)) != s"
        );

        // A restored graph is clean; one more rebuild moves nothing.
        restored.rebuild();
        assert_eq!(restored.find(root), original.find(root), "{kernel}: rebuild moved the root");
        assert_eq!(
            restored.num_classes(),
            original.num_classes(),
            "{kernel}: rebuild collapsed classes"
        );

        for target in Target::ALL {
            let ctx = format!("{kernel}/{target}");
            assert_same_extraction(&original, &restored, root, target, &ctx);
        }
    }
}

/// Snapshot bytes don't care how the saturation was scheduled: a
/// parallel run (which `parallel_determinism.rs` pins to the serial
/// fixpoint) serializes to the very same bytes, and its restore passes
/// the same extraction wall.
#[test]
fn parallel_saturation_snapshots_byte_identical_to_serial() {
    for kernel in KERNELS {
        let expr = kernel.expr(8);
        let (serial, root) = sweep_pipeline().saturate_for_targets(&expr, &Target::ALL);
        let (parallel, p_root) = sweep_pipeline()
            .with_threads(4)
            .saturate_for_targets(&expr, &Target::ALL);

        assert_eq!(root, p_root, "{kernel}: roots diverged");
        let serial_bytes = serial.snapshot().expect("snapshot");
        let parallel_bytes = parallel.snapshot().expect("snapshot");
        assert_eq!(
            serial_bytes, parallel_bytes,
            "{kernel}: serial and parallel saturation serialized differently"
        );

        let restored = restore(&parallel_bytes);
        for target in Target::ALL {
            let ctx = format!("{kernel}/{target} (parallel)");
            assert_same_extraction(&serial, &restored, root, target, &ctx);
        }
    }
}

/// Proof production survives the round trip: the explanation forest is
/// part of the snapshot, so the restored graph explains the same
/// equivalences with step-identical proofs, and those proofs still
/// replay against the rule set that produced the graph.
#[test]
fn proofs_replay_identically_after_restore() {
    let rules = rules_for_targets(&Target::ALL, &RuleConfig::default());
    for kernel in KERNELS {
        let expr = kernel.expr(8);
        let (mut original, root) = sweep_pipeline()
            .with_explanations(true)
            .saturate_for_targets(&expr, &Target::ALL);
        let bytes = original.snapshot().expect("snapshot");
        let mut restored = restore(&bytes);
        assert!(restored.are_explanations_enabled(), "{kernel}: forest lost");

        for target in Target::ALL {
            let (_, best) = Extractor::new(&original, TargetCost::new(target)).find_best(root);
            // Same query order on both graphs: explaining mutates the
            // forest (path compression), so interleave identically.
            let proof = original.explain_equivalence(&expr, &best);
            let replayed = restored.explain_equivalence(&expr, &best);
            let ctx = format!("{kernel}/{target}");
            assert_eq!(proof.source, replayed.source, "{ctx}: proof source diverged");
            assert_eq!(proof.target, replayed.target, "{ctx}: proof target diverged");
            assert_eq!(proof.steps, replayed.steps, "{ctx}: proof steps diverged");
            replayed
                .check(&rules)
                .unwrap_or_else(|e| panic!("{ctx}: restored proof failed to replay: {e}"));
        }
    }
}

/// Warm-started serving must never change answers: resuming saturation
/// from a snapshot (same kernel, or a different kernel's graph as seed)
/// converges to the same solutions as a cold run under the request's
/// ruleset. BLAS-only here — the one ruleset where both seed and request
/// kernels *saturate* (memset in 3 steps, axpy in 7), which the warm
/// soundness contract requires of the seed.
#[test]
fn warm_resume_matches_cold_run() {
    const TARGETS: [Target; 1] = [Target::Blas];
    let pipeline = || {
        Liar::new(Target::Blas)
            .with_iter_limit(12)
            .with_node_limit(60_000)
    };
    let axpy = Kernel::Axpy.expr(8);
    let memset = Kernel::Memset.expr(8);

    let cold = pipeline()
        .optimize_multi(&axpy, &TARGETS, &[1.0])
        .expect("axpy is extractable for blas");
    assert_eq!(
        cold.stop_reason,
        StopReason::Saturated,
        "warm-resume soundness contract wants a saturated seed"
    );

    // Same-kernel resume: the snapshot already contains every discovery,
    // so the resumed run finds nothing new and stops immediately.
    let (seed, _) = pipeline().saturate_for_targets(&axpy, &TARGETS);
    let bytes = seed.snapshot().expect("snapshot");
    let warm = pipeline()
        .optimize_multi_warm(&bytes, &axpy, &TARGETS, &[1.0])
        .expect("warm resume succeeds");
    assert_eq!(warm.stop_reason, StopReason::Saturated);
    assert!(
        warm.steps.len() <= 2,
        "same-kernel resume should confirm saturation in one step, ran {}",
        warm.steps.len().saturating_sub(1)
    );

    // Cross-kernel resume: a memset-saturated graph seeds an axpy
    // request; the resumed saturation only pays for axpy's frontier.
    let (other_seed, _) = pipeline().saturate_for_targets(&memset, &TARGETS);
    let other_bytes = other_seed.snapshot().expect("snapshot");
    let cross = pipeline()
        .optimize_multi_warm(&other_bytes, &axpy, &TARGETS, &[1.0])
        .expect("cross-kernel warm resume succeeds");
    assert_eq!(cross.stop_reason, StopReason::Saturated);

    for resumed in [&warm, &cross] {
        assert_eq!(resumed.solutions.len(), cold.solutions.len());
        for (c, w) in cold.solutions.iter().zip(&resumed.solutions) {
            let ctx = format!("axpy/{}", c.target);
            assert_eq!(c.target, w.target, "{ctx}: target order diverged");
            assert_eq!(c.lib_calls, w.lib_calls, "{ctx}: library calls diverged");
            assert_eq!(
                c.cost.to_bits(),
                w.cost.to_bits(),
                "{ctx}: cost diverged: {} vs {}",
                c.cost,
                w.cost
            );
            assert_cost_close(c.dag_cost, w.dag_cost, &ctx);
        }
    }
}

/// Corrupt bytes — truncations, a bumped format version, single-bit
/// flips anywhere in the payload — must come back as structured
/// [`SnapshotError`]s. No panics, and since `restore` is a pure
/// constructor, no partially-mutated e-graph can escape.
#[test]
fn corrupt_snapshots_fail_structurally_without_panic() {
    let expr = Kernel::Gemv.expr(8);
    let (egraph, _) = Liar::new(Target::Blas)
        .with_iter_limit(2)
        .with_node_limit(20_000)
        .saturate_for_targets(&expr, &[Target::Blas]);
    let bytes = egraph.snapshot().expect("snapshot");

    // Truncation at every prefix length (stride keeps the sweep cheap;
    // the liar-egraph unit wall covers every single length).
    for len in (0..bytes.len()).step_by(23).chain([bytes.len() - 1]) {
        let err = ArrayEGraph::restore(ArrayAnalysis::default(), &bytes[..len])
            .expect_err("truncated snapshot must not restore");
        assert!(
            !matches!(err, SnapshotError::Dirty),
            "truncation at {len} misreported as {err:?}"
        );
    }

    // A future format version is refused up front, naming both sides.
    let mut bumped = bytes.clone();
    bumped[8] = bumped[8].wrapping_add(1); // u32 LE version right after the 8-byte magic
    match ArrayEGraph::restore(ArrayAnalysis::default(), &bumped) {
        Err(SnapshotError::VersionMismatch { found, expected }) => {
            assert_eq!(found, expected + 1, "unexpected version delta")
        }
        other => panic!("version bump not detected: {other:?}"),
    }

    // Bit flips anywhere — header, string table, class payload,
    // checksum itself — are caught (whole-payload checksum).
    for pos in (0..bytes.len()).step_by(17) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 1 << (pos % 8);
        assert!(
            ArrayEGraph::restore(ArrayAnalysis::default(), &flipped).is_err(),
            "bit flip at byte {pos} restored successfully"
        );
    }
}
