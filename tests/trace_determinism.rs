//! The tracing + attribution wall: attaching a
//! [`liar::trace::Recorder`] or enabling the growth-attribution ledger
//! is strictly observational — reports, solutions and proofs are
//! **bit-identical** with the observer on or off, under both the serial
//! and parallel search engines. If these break, profiling (or
//! inspecting) a run changes what LIAR discovers, and every measurement
//! is suspect.
//!
//! Also pins the export contract the acceptance criteria name: the
//! Chrome trace-event JSON parses (with the repo's own parser) and its
//! phase spans nest properly for real kernels (gemv, mvt), and the
//! attribution ledger's conservation identities hold on **every**
//! evaluation kernel under the union ruleset.

use std::collections::BTreeMap;
use std::sync::Arc;

use liar::core::{InspectReport, Liar, MultiReport, OptimizationReport, Target};
use liar::ir::Expr;
use liar::kernels::Kernel;
use liar::serve::json::{self, Json};
use liar::trace::Recorder;

fn optimize(expr: &Expr, threads: usize, trace: Option<&Arc<Recorder>>) -> OptimizationReport {
    let mut pipeline = Liar::new(Target::Blas)
        .with_iter_limit(6)
        .with_threads(threads);
    if let Some(rec) = trace {
        pipeline = pipeline.with_trace(Arc::clone(rec));
    }
    pipeline.optimize(expr)
}

/// Everything except wall-clock timings must agree step by step.
fn assert_reports_identical(plain: &OptimizationReport, traced: &OptimizationReport, ctx: &str) {
    assert_eq!(plain.stop_reason, traced.stop_reason, "{ctx}: stop reason");
    assert_eq!(plain.steps.len(), traced.steps.len(), "{ctx}: step count");
    for (a, b) in plain.steps.iter().zip(&traced.steps) {
        let step = a.step;
        assert_eq!(a.step, b.step, "{ctx}");
        assert_eq!(a.n_nodes, b.n_nodes, "{ctx}: step {step} e-nodes");
        assert_eq!(a.n_classes, b.n_classes, "{ctx}: step {step} classes");
        assert_eq!(a.search_candidates, b.search_candidates, "{ctx}: step {step} candidates");
        assert_eq!(a.frontier_candidates, b.frontier_candidates, "{ctx}: step {step} frontier");
        assert_eq!(a.search_matches, b.search_matches, "{ctx}: step {step} matches");
        assert_eq!(a.applied, b.applied, "{ctx}: step {step} rule applications");
        assert_eq!(a.best, b.best, "{ctx}: step {step} solution");
        assert_eq!(a.cost, b.cost, "{ctx}: step {step} cost");
        assert_eq!(a.lib_calls, b.lib_calls, "{ctx}: step {step} library calls");
    }
}

#[test]
fn tracing_is_invisible_to_single_target_reports() {
    for kernel in [Kernel::Vsum, Kernel::Gemv] {
        let expr = kernel.expr(kernel.search_size());
        for threads in [1, 4] {
            let ctx = format!("{} @ {threads} threads", kernel.name());
            let plain = optimize(&expr, threads, None);
            let rec = Recorder::new();
            let traced = optimize(&expr, threads, Some(&rec));
            assert_reports_identical(&plain, &traced, &ctx);
            // The traced run actually recorded something.
            let events = rec.events();
            assert!(events.iter().any(|e| e.name == "step"), "{ctx}: no step spans");
            assert!(events.iter().any(|e| e.name == "rebuild"), "{ctx}: no rebuild spans");
        }
    }
}

fn optimize_multi(expr: &Expr, threads: usize, trace: Option<&Arc<Recorder>>) -> MultiReport {
    let mut pipeline = Liar::new(Target::Blas)
        .with_iter_limit(6)
        .with_threads(threads)
        .with_explanations(true);
    if let Some(rec) = trace {
        pipeline = pipeline.with_trace(Arc::clone(rec));
    }
    pipeline
        .optimize_multi(expr, &[Target::Blas, Target::Torch], &[1.0])
        .expect("multi-target optimization succeeds")
}

#[test]
fn tracing_is_invisible_to_multi_solutions_and_proofs() {
    let expr = Kernel::Gemv.expr(Kernel::Gemv.search_size());
    for threads in [1, 4] {
        let ctx = format!("gemv @ {threads} threads");
        let plain = optimize_multi(&expr, threads, None);
        let rec = Recorder::new();
        let traced = optimize_multi(&expr, threads, Some(&rec));

        assert_eq!(plain.stop_reason, traced.stop_reason, "{ctx}");
        assert_eq!(plain.n_nodes, traced.n_nodes, "{ctx}");
        assert_eq!(plain.n_classes, traced.n_classes, "{ctx}");
        assert_eq!(plain.solutions.len(), traced.solutions.len(), "{ctx}");
        for (a, b) in plain.solutions.iter().zip(&traced.solutions) {
            let t = a.target.name();
            assert_eq!(a.target, b.target, "{ctx}");
            assert_eq!(a.profile, b.profile, "{ctx}: {t}");
            assert_eq!(a.best, b.best, "{ctx}: {t} best expression");
            assert_eq!(a.cost, b.cost, "{ctx}: {t} cost");
            assert_eq!(a.dag_best, b.dag_best, "{ctx}: {t} DAG expression");
            assert_eq!(a.dag_cost, b.dag_cost, "{ctx}: {t} DAG cost");
            assert_eq!(a.lib_calls, b.lib_calls, "{ctx}: {t} library calls");
            assert_eq!(a.stats, b.stats, "{ctx}: {t} extraction statistics");
            match (&a.proof, &b.proof) {
                (Some(p), Some(q)) => {
                    assert_eq!(p.source, q.source, "{ctx}: {t} proof source");
                    assert_eq!(p.target, q.target, "{ctx}: {t} proof target");
                    assert_eq!(p.steps, q.steps, "{ctx}: {t} proof steps");
                }
                _ => panic!("{ctx}: {t}: explanations were on — proofs expected on both"),
            }
        }

        // The traced run covered all three layers of the pipeline taxonomy.
        let events = rec.events();
        let has = |name: &str| events.iter().any(|e| e.name == name);
        assert!(has("saturate"), "{ctx}: no saturate span");
        assert!(has("extract/flatten"), "{ctx}: no flatten span");
        assert!(has("extract/blas"), "{ctx}: no blas extraction span");
        assert!(
            events.iter().any(|e| e.name.starts_with("explain/")),
            "{ctx}: no explain span"
        );
    }
}

fn optimize_multi_attributed(expr: &Expr, threads: usize, attribution: bool) -> MultiReport {
    Liar::new(Target::Blas)
        .with_iter_limit(6)
        .with_threads(threads)
        .with_explanations(true)
        .with_attribution(attribution)
        .optimize_multi(expr, &[Target::Blas, Target::Torch], &[1.0])
        .expect("multi-target optimization succeeds")
}

/// Everything except wall-clock timings (and the `inspect` tables
/// themselves) must agree between two live multi-target runs.
fn assert_multi_semantically_identical(a: &MultiReport, b: &MultiReport, ctx: &str) {
    assert_eq!(a.targets, b.targets, "{ctx}: targets");
    assert_eq!(a.stop_reason, b.stop_reason, "{ctx}: stop reason");
    assert_eq!(a.n_nodes, b.n_nodes, "{ctx}: e-nodes");
    assert_eq!(a.n_classes, b.n_classes, "{ctx}: classes");
    assert_eq!(a.steps.len(), b.steps.len(), "{ctx}: step count");
    for (s, p) in a.steps.iter().zip(&b.steps) {
        let step = s.step;
        assert_eq!(s.step, p.step, "{ctx}");
        assert_eq!(s.n_nodes, p.n_nodes, "{ctx}: step {step} e-nodes");
        assert_eq!(s.n_classes, p.n_classes, "{ctx}: step {step} classes");
        assert_eq!(s.search_candidates, p.search_candidates, "{ctx}: step {step} candidates");
        assert_eq!(s.frontier_candidates, p.frontier_candidates, "{ctx}: step {step} frontier");
        assert_eq!(s.search_matches, p.search_matches, "{ctx}: step {step} matches");
    }
    // Solutions carry the proofs; compare everything except
    // `extract_time` (wall clock).
    assert_eq!(a.solutions.len(), b.solutions.len(), "{ctx}: solution count");
    for (s, p) in a.solutions.iter().zip(&b.solutions) {
        let t = s.target.name();
        assert_eq!(s.target, p.target, "{ctx}");
        assert_eq!(s.profile, p.profile, "{ctx}: {t}");
        assert_eq!(s.best, p.best, "{ctx}: {t} best expression");
        assert_eq!(s.cost, p.cost, "{ctx}: {t} cost");
        assert_eq!(s.dag_best, p.dag_best, "{ctx}: {t} DAG expression");
        assert_eq!(s.dag_cost, p.dag_cost, "{ctx}: {t} DAG cost");
        assert_eq!(s.lib_calls, p.lib_calls, "{ctx}: {t} library calls");
        assert_eq!(s.stats, p.stats, "{ctx}: {t} extraction statistics");
        assert_eq!(s.proof, p.proof, "{ctx}: {t} proof");
    }
}

#[test]
fn attribution_is_invisible_to_reports_solutions_and_proofs() {
    for kernel in [Kernel::Vsum, Kernel::Gemv] {
        let expr = kernel.expr(kernel.search_size());
        for threads in [1, 4] {
            let ctx = format!("{} @ {threads} threads", kernel.name());
            let off = optimize_multi_attributed(&expr, threads, false);
            let on = optimize_multi_attributed(&expr, threads, true);

            assert_multi_semantically_identical(&off, &on, &ctx);
            assert!(off.inspect.is_none(), "{ctx}: ledger off but tables present");
            let inspect = on.inspect.as_ref().unwrap_or_else(|| {
                panic!("{ctx}: ledger on but no tables")
            });
            inspect.check().unwrap_or_else(|e| {
                panic!("{ctx}: conservation violated: {e}")
            });
            // The tables describe the same e-graph the report does.
            assert_eq!(inspect.n_nodes, on.n_nodes, "{ctx}");
            assert_eq!(inspect.n_classes, on.n_classes, "{ctx}");
        }
    }
}

#[test]
fn attribution_tables_are_bit_identical_serial_vs_parallel() {
    let expr = Kernel::Gemv.expr(Kernel::Gemv.search_size());
    let serial = optimize_multi_attributed(&expr, 1, true);
    let parallel = optimize_multi_attributed(&expr, 4, true);
    assert_multi_semantically_identical(&serial, &parallel, "gemv serial vs parallel");
    // `InspectReport` has no wall-clock fields: the tables must be
    // bit-identical across engines.
    assert_eq!(
        serial.inspect, parallel.inspect,
        "attribution tables diverge across engines"
    );
}

#[test]
fn conservation_holds_on_every_kernel_under_the_union_ruleset() {
    for kernel in Kernel::ALL {
        let expr = kernel.expr(kernel.search_size());
        let inspect_at = |threads: usize| -> InspectReport {
            Liar::new(Target::Blas)
                .with_iter_limit(6)
                .with_threads(threads)
                .inspect(&expr, &Target::ALL)
        };
        let serial = inspect_at(1);
        serial.check().unwrap_or_else(|e| {
            panic!("{}: conservation violated (serial): {e}", kernel.name())
        });
        let parallel = inspect_at(4);
        assert_eq!(
            serial,
            parallel,
            "{}: tables diverge serial vs parallel",
            kernel.name()
        );
        // Attribution charged real work, not just the initial program.
        assert!(
            serial.total_nodes_created() > 0 && serial.rule("(init)").is_some(),
            "{}: empty ledger",
            kernel.name()
        );
    }
}

struct Span {
    name: String,
    ts: u64,
    end: u64,
}

/// Pull the `ph:"X"` complete spans out of a parsed Chrome trace,
/// grouped by thread lane.
fn spans_by_tid(doc: &Json) -> BTreeMap<u64, Vec<Span>> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut by_tid: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let name = e.get("name").and_then(Json::as_str).expect("span name").to_string();
        let tid = e.get("tid").and_then(Json::as_f64).expect("span tid") as u64;
        let ts = e.get("ts").and_then(Json::as_f64).expect("span ts") as u64;
        let dur = e.get("dur").and_then(Json::as_f64).expect("span dur") as u64;
        by_tid.entry(tid).or_default().push(Span { name, ts, end: ts + dur });
    }
    by_tid
}

#[test]
fn chrome_export_parses_and_phase_spans_nest() {
    for kernel in [Kernel::Gemv, Kernel::Mvt] {
        let expr = kernel.expr(kernel.search_size());
        let rec = Recorder::new();
        Liar::new(Target::Blas)
            .with_iter_limit(6)
            .with_trace(Arc::clone(&rec))
            .optimize_multi(&expr, &[Target::Blas], &[1.0])
            .expect("multi-target optimization succeeds");

        let text = rec.chrome_trace_json();
        let doc = json::parse(&text).expect("chrome trace parses as JSON");
        let by_tid = spans_by_tid(&doc);
        assert!(!by_tid.is_empty(), "{}: no spans exported", kernel.name());

        for (tid, spans) in &by_tid {
            // Spans on one lane either nest or are disjoint — no partial
            // overlap (that's what makes the flame graph render).
            for (i, a) in spans.iter().enumerate() {
                for b in &spans[i + 1..] {
                    let disjoint = a.end <= b.ts || b.end <= a.ts;
                    let nested = (a.ts <= b.ts && b.end <= a.end) || (b.ts <= a.ts && a.end <= b.end);
                    assert!(
                        disjoint || nested,
                        "{} tid {tid}: spans `{}` [{}, {}) and `{}` [{}, {}) partially overlap",
                        kernel.name(), a.name, a.ts, a.end, b.name, b.ts, b.end,
                    );
                }
            }
            // Phase containment: search/apply/rebuild live inside a step.
            let steps: Vec<&Span> = spans.iter().filter(|s| s.name == "step").collect();
            for s in spans.iter().filter(|s| matches!(s.name.as_str(), "search" | "apply" | "rebuild")) {
                assert!(
                    steps.iter().any(|st| st.ts <= s.ts && s.end <= st.end),
                    "{} tid {tid}: `{}` span not inside any `step` span",
                    kernel.name(), s.name,
                );
            }
        }

        // The expected phase spans all made it into the export.
        let all: Vec<&str> = by_tid.values().flatten().map(|s| s.name.as_str()).collect();
        for expected in ["step", "search", "apply", "rebuild", "saturate", "extract/flatten", "extract/blas"] {
            assert!(
                all.contains(&expected),
                "{}: exported trace is missing a `{expected}` span",
                kernel.name(),
            );
        }
    }
}
