//! The load-bearing end-to-end property: equality saturation must be
//! *semantics-preserving*. For each kernel and target, every solution
//! extracted at every saturation step must compute the same result as the
//! hand-written reference implementation.
//!
//! This exercises the whole stack: kernel construction (liar-kernels),
//! rules + extraction (liar-core / liar-egraph), and execution with
//! library dispatch (liar-runtime).

use liar::core::{Liar, Target};
use liar::kernels::{values_approx_eq, Kernel};
use liar::runtime::exec;

fn check_kernel(kernel: Kernel, target: Target, iter_limit: usize) {
    let n = kernel.search_size();
    let inputs = kernel.inputs(n, 0xBEEF);
    let reference = kernel
        .reference(n, &inputs)
        .unwrap_or_else(|e| panic!("{kernel}: reference failed: {e}"));
    let report = Liar::new(target)
        .with_iter_limit(iter_limit)
        .with_node_limit(60_000)
        .optimize(&kernel.expr(n));
    for step in &report.steps {
        let (value, _) = exec::run(&step.best, &inputs).unwrap_or_else(|e| {
            panic!(
                "{kernel}/{target} step {}: execution failed: {e}\n  expr: {}",
                step.step, step.best
            )
        });
        assert!(
            values_approx_eq(&value, &reference, 1e-7),
            "{kernel}/{target} step {}: wrong result for solution {}\n  expr: {}",
            step.step,
            step.solution_summary(),
            step.best
        );
    }
}

macro_rules! preservation_tests {
    ($($test_name:ident: $kernel:expr, $iters:expr;)*) => {
        $(
            mod $test_name {
                use super::*;

                #[test]
                fn blas() {
                    check_kernel($kernel, Target::Blas, $iters);
                }

                #[test]
                fn pytorch() {
                    check_kernel($kernel, Target::Torch, $iters);
                }

                #[test]
                fn pure_c() {
                    check_kernel($kernel, Target::PureC, $iters);
                }
            }
        )*
    };
}

preservation_tests! {
    vsum: Kernel::Vsum, 6;
    axpy: Kernel::Axpy, 5;
    memset: Kernel::Memset, 4;
    gemv: Kernel::Gemv, 6;
    gesummv: Kernel::Gesummv, 5;
    atax: Kernel::Atax, 5;
    one_mm: Kernel::OneMm, 7;
    jacobi1d: Kernel::Jacobi1d, 6;
    blur1d: Kernel::Blur1d, 6;
    mvt: Kernel::Mvt, 5;
    slim_2mm: Kernel::Slim2mm, 6;
    doitgen: Kernel::Doitgen, 7;
}
