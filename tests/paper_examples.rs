//! The worked examples from the paper's prose, end to end.

use liar::core::rules::{core_rules, rules_for, scalar_rules, RuleConfig};
use liar::core::{Liar, Target};
use liar::egraph::Runner;
use liar::ir::{dsl, ArrayEGraph, Expr};

fn e(s: &str) -> Expr {
    s.parse().unwrap()
}

/// §IV.C.1: map fusion. `build n (λ f (build n (λ g xs[•0]))[•0])` equals
/// `build n (λ f (g xs[•0]))` under the core rules alone.
#[test]
fn section_4c1_map_fusion() {
    let two_maps = e("(build #8 (lam (* (get (build #8 (lam (+ (get xs %0) 1))) %0) 2)))");
    let fused = e("(build #8 (lam (* (+ (get xs %0) 1) 2)))");
    let mut eg = ArrayEGraph::default();
    let root = eg.add_expr(&two_maps);
    let mut runner = Runner::new(eg).with_iter_limit(4);
    runner.run(&core_rules(&RuleConfig::default()));
    assert_eq!(
        runner.egraph.lookup_expr(&fused),
        Some(runner.egraph.find(root)),
        "map fusion follows from R-ElimIndexBuild + R-BetaReduce"
    );
}

/// §IV.C.2: constant array construction. `build n (λ xs[•0] + 42)` equals
/// `addvec(xs, constvec(42))` once the library idioms are in play; with
/// the PyTorch rules this is `add(xs, full(42))`.
#[test]
fn section_4c2_constant_array() {
    let program = e("(build #8 (lam (+ (get xs %0) 42)))");
    let report = Liar::new(Target::Torch).with_iter_limit(6).optimize(&program);
    assert_eq!(
        report.best().solution_summary(),
        "1 × add + 1 × full",
        "best: {}",
        report.best().best
    );
    assert_eq!(
        report.best().best,
        e("(add #8 xs (full #8 42))"),
    );
}

/// §V.A: the latent dot product in vector sum, via E-MULONER,
/// R-INTROLAMBDA and R-INTROINDEXBUILD.
#[test]
fn section_5a_latent_dot_product() {
    let vsum = e("(ifold #8 0 (lam (lam (+ (get xs %1) %0))))");
    let mut eg = ArrayEGraph::default();
    let root = eg.add_expr(&vsum);
    let mut runner = Runner::new(eg).with_iter_limit(5);
    runner.run(&rules_for(Target::Blas, &RuleConfig::default()));
    // The intermediate form the paper derives:
    //   ifold n 0 (λ λ xs[•1] * (build n (λ 1))[•1] + •0)
    let intermediate = e(
        "(ifold #8 0 (lam (lam (+ (* (get xs %1) (get (build #8 (lam 1)) %1)) %0))))",
    );
    assert_eq!(
        runner.egraph.lookup_expr(&intermediate),
        Some(runner.egraph.find(root)),
        "the ones-vector form must be derived"
    );
    // And the final library form.
    let as_dot = e("(dot #8 xs (build #8 (lam 1)))");
    assert_eq!(
        runner.egraph.lookup_expr(&as_dot),
        Some(runner.egraph.find(root))
    );
}

/// §VI: the gemv kernel is "simply gemvF(α, A, B, β, C)" when targeting
/// BLAS, and granular add/mul/mv calls when targeting PyTorch.
#[test]
fn section_6_gemv_two_targets() {
    let gemv = dsl::vadd(
        8,
        dsl::vscale(8, dsl::sym("alpha"), dsl::matvec(8, 8, dsl::sym("A"), dsl::sym("B"))),
        dsl::vscale(8, dsl::sym("beta"), dsl::sym("C")),
    );
    let blas = Liar::new(Target::Blas).with_iter_limit(7).optimize(&gemv);
    assert_eq!(blas.best().best, e("(gemv #8 #8 alpha A B beta C)"));

    let torch = Liar::new(Target::Torch).with_iter_limit(7).optimize(&gemv);
    let calls = &torch.best().lib_calls;
    assert_eq!(calls.get("add"), Some(&1), "torch best: {}", torch.best().best);
    assert_eq!(calls.get("mul"), Some(&2));
    assert_eq!(calls.get("mv"), Some(&1));
}

/// §II's background example, transliterated: a rewrite rule turns division
/// into shift, and extraction picks the cheap form.
#[test]
fn section_2_background_shift_example() {
    // In our IR: (a / 2) + 2 where the "shift" is modeled by * 0.5.
    let mut eg = ArrayEGraph::default();
    let root = eg.add_expr(&e("(+ (/ a 2) 2)"));
    let rules = vec![liar::egraph::Rewrite::from_patterns(
        "div2-to-mul-half",
        "(/ ?x 2)",
        "(* ?x 0.5)",
    )];
    let mut runner = Runner::new(eg).with_iter_limit(3);
    runner.run(&rules);
    assert_eq!(
        runner.egraph.lookup_expr(&e("(+ (* a 0.5) 2)")),
        Some(runner.egraph.find(root))
    );
}

/// The scalar rules never fire on non-scalar classes, so λ-classes stay
/// clean even after many steps (regression guard for the "x and y are
/// numbers" side condition of listing 3).
#[test]
fn scalar_rules_respect_side_condition() {
    let program = e("(build #4 (lam (+ (get xs %0) 1)))");
    let mut eg = ArrayEGraph::default();
    let root = eg.add_expr(&program);
    let mut runner = Runner::new(eg).with_iter_limit(5);
    runner.run(&scalar_rules(&RuleConfig::default()));
    // The root is an array-valued build: it must not acquire + or * nodes.
    let class = &runner.egraph[root];
    assert!(class
        .iter()
        .all(|n| !matches!(n, liar::ir::ArrayLang::Add(_) | liar::ir::ArrayLang::Mul(_))));
}
